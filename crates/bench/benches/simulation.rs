//! Simulation-substrate performance: cache hierarchy, core execution,
//! and end-to-end profiling throughput, plus the D1 ablation (memory
//! latency is what makes ODB-C's CPI flat and L3-dominated).

use criterion::{criterion_group, criterion_main, Criterion};
use fuzzyphase::arch::{AccessKind, Core, MachineConfig, MemoryHierarchy, Quantum};
use fuzzyphase::prelude::*;
use fuzzyphase::workload::oltp::odb_c;
use fuzzyphase::workload::spec::spec_workload;

fn bench_cache(c: &mut Criterion) {
    let cfg = MachineConfig::itanium2();
    c.bench_function("hierarchy_access_1k_random", |b| {
        let mut h = MemoryHierarchy::new(&cfg);
        let mut x = 0x9E3779B97F4A7C15u64;
        b.iter(|| {
            let mut level_sum = 0u64;
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                level_sum += h.access_data(x % (256 << 20), AccessKind::Read) as u64;
            }
            level_sum
        })
    });
}

fn bench_core(c: &mut Criterion) {
    c.bench_function("core_execute_quantum", |b| {
        let mut core = Core::new(MachineConfig::itanium2());
        let mut w = odb_c(1);
        // Pre-collect quanta so the bench isolates core execution.
        let mut quanta = Vec::new();
        while quanta.len() < 256 {
            if let fuzzyphase::workload::WorkloadEvent::Quantum(q) = w.next_event() {
                quanta.push(q);
            }
        }
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % quanta.len();
            core.execute(&quanta[i])
        })
    });

    c.bench_function("core_execute_compute_only", |b| {
        let mut core = Core::new(MachineConfig::itanium2());
        let q = Quantum::compute(0x1000, 150);
        b.iter(|| core.execute(&q))
    });
}

fn bench_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_session");
    group.sample_size(10);
    group.bench_function("spec_gzip_10_intervals", |b| {
        b.iter(|| {
            let mut w = spec_workload("gzip", 1);
            let cfg = ProfileConfig {
                num_intervals: 10,
                warmup_intervals: 2,
                ..Default::default()
            };
            ProfileSession::run(&mut w, &cfg)
        })
    });
    group.bench_function("oltp_10_intervals", |b| {
        b.iter(|| {
            let mut w = odb_c(1);
            let cfg = ProfileConfig {
                num_intervals: 10,
                warmup_intervals: 2,
                ..Default::default()
            };
            ProfileSession::run(&mut w, &cfg)
        })
    });
    group.finish();
}

/// D1 ablation: with memory latency shrunk to L2-like levels, the L3-miss
/// dominance that flattens ODB-C's CPI disappears. The bench measures the
/// run, and prints the structural difference once.
fn bench_ablation_l3(c: &mut Criterion) {
    let run = |latency: u32| {
        let mut machine = MachineConfig::itanium2();
        machine.memory_latency = latency;
        let mut w = odb_c(7);
        let cfg = ProfileConfig {
            machine,
            num_intervals: 20,
            warmup_intervals: 4,
            ..Default::default()
        };
        ProfileSession::run(&mut w, &cfg)
    };
    // One-shot structural report.
    let slow = run(225);
    let fast = run(20);
    println!(
        "\n[D1 ablation] memory latency 225: EXE share {:.0}%, CPI {:.2} | latency 20: EXE share {:.0}%, CPI {:.2}",
        slow.mean_breakdown().exe_fraction() * 100.0,
        slow.mean_cpi(),
        fast.mean_breakdown().exe_fraction() * 100.0,
        fast.mean_cpi()
    );
    let mut group = c.benchmark_group("ablation_l3_latency");
    group.sample_size(10);
    group.bench_function("memory_latency_225", |b| b.iter(|| run(225)));
    group.bench_function("memory_latency_20", |b| b.iter(|| run(20)));
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    use fuzzyphase::workload::btree::BTree;
    use fuzzyphase::workload::{MemoryRegion, Workload};

    c.bench_function("odb_c_event_generation_1k", |b| {
        let mut w = odb_c(1);
        b.iter(|| {
            for _ in 0..1000 {
                let _ = w.next_event();
            }
        })
    });

    let keys: Vec<u64> = (0..2_000_000u64).map(|i| i * 2).collect();
    let tree = BTree::bulk_load(&keys, 128, MemoryRegion::new(0x1000_0000, 256 << 20));
    c.bench_function("btree_probe_2m_keys", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 2_654_435_761) % 4_000_000;
            tree.probe(k)
        })
    });
    let mut group = c.benchmark_group("btree_bulk_load");
    group.sample_size(10);
    group.bench_function("2m_keys_fanout128", |b| {
        b.iter(|| BTree::bulk_load(&keys, 128, MemoryRegion::new(0x1000_0000, 256 << 20)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_core,
    bench_profile,
    bench_workload_generation,
    bench_ablation_l3
);
criterion_main!(benches);
