//! EIPV construction and the D4 ablation: sparse vectors vs dense
//! materialization for distance work.

use criterion::{criterion_group, criterion_main, Criterion};
use fuzzyphase::profiler::{EipvData, Sample};
use fuzzyphase::stats::{seeded_rng, SparseVec};
use rand::Rng;

fn samples(n: usize, eips: u64) -> Vec<Sample> {
    let mut rng = seeded_rng(3);
    (0..n)
        .map(|_| Sample {
            eip: rng.gen_range(0..eips) * 16,
            thread: rng.gen_range(0..16),
            is_os: false,
            cpi: rng.gen_range(1.0..3.0),
        })
        .collect()
}

fn bench_eipv(c: &mut Criterion) {
    let ss = samples(25_000, 24_000);
    c.bench_function("eipv_build_25k_samples", |b| {
        b.iter(|| EipvData::from_samples(&ss, 100))
    });
    c.bench_function("eipv_build_per_thread", |b| {
        b.iter(|| EipvData::from_samples_per_thread(&ss, 100))
    });

    // D4 ablation: pairwise distances sparse vs via dense buffers.
    let data = EipvData::from_samples(&ss, 100);
    let vs: &Vec<SparseVec> = &data.vectors;
    let dim = data.num_features();
    c.bench_function("dist2_sparse_100_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100.min(vs.len() - 1) {
                acc += vs[i].dist2(&vs[i + 1]);
            }
            acc
        })
    });
    c.bench_function("dist2_dense_100_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut da = vec![0.0f64; dim];
            for i in 0..100.min(vs.len() - 1) {
                for x in da.iter_mut() {
                    *x = 0.0;
                }
                vs[i].add_into_dense(&mut da);
                acc += vs[i + 1].dist2_dense(&da);
            }
            acc
        })
    });
}

criterion_group!(benches, bench_eipv);
criterion_main!(benches);
