//! Regression-tree performance: build, cross-validate, and the D2
//! ablation (sparsity-aware sorted split scan vs the naive quadratic scan
//! the paper describes literally).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fuzzyphase::regtree::{cross_validate, CrossValidation, Dataset, Fitter, TreeBuilder};
use fuzzyphase::stats::{seeded_rng, SparseVec};
use rand::Rng;

/// A realistic EIPV-shaped dataset: `n` vectors, `features` unique EIPs,
/// ~`nnz` non-zeros per vector, phased targets.
fn eipv_dataset(n: usize, features: u32, nnz: usize, seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed);
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let phase = (i / 20) % 3;
        let base = phase as u32 * (features / 3);
        let pairs: Vec<(u32, f64)> = (0..nnz)
            .map(|_| {
                (
                    base + rng.gen_range(0..features / 3),
                    rng.gen_range(1.0..5.0),
                )
            })
            .collect();
        rows.push(SparseVec::from_pairs(pairs));
        ys.push(1.0 + phase as f64 * 0.8 + rng.gen_range(-0.05..0.05));
    }
    Dataset::new(rows, ys)
}

/// D2 reference implementation: evaluate every (feature, threshold) pair
/// by re-partitioning from scratch — O(features × rows²)-ish.
fn naive_best_split(ds: &Dataset) -> (u32, f64) {
    let n = ds.len();
    let mut features: Vec<u32> = Vec::new();
    for i in 0..n {
        for (f, _) in ds.row(i).iter() {
            features.push(f);
        }
    }
    features.sort_unstable();
    features.dedup();

    let mut best = (0u32, 0.0f64, f64::INFINITY);
    for &f in &features {
        let mut values: Vec<f64> = (0..n).map(|i| ds.row(i).get(f)).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        values.dedup();
        for &t in &values[..values.len().saturating_sub(1)] {
            let (mut ls, mut lq, mut ln) = (0.0f64, 0.0f64, 0.0f64);
            let (mut rs, mut rq, mut rn) = (0.0f64, 0.0f64, 0.0f64);
            for i in 0..n {
                let y = ds.target(i);
                if ds.row(i).get(f) <= t {
                    ls += y;
                    lq += y * y;
                    ln += 1.0;
                } else {
                    rs += y;
                    rq += y * y;
                    rn += 1.0;
                }
            }
            let sse = (lq - ls * ls / ln.max(1.0)) + (rq - rs * rs / rn.max(1.0));
            if sse < best.2 {
                best = (f, t, sse);
            }
        }
    }
    (best.0, best.1)
}

fn bench_regtree(c: &mut Criterion) {
    let small = eipv_dataset(250, 3_000, 100, 1);
    let large = eipv_dataset(250, 20_000, 100, 2);

    c.bench_function("tree_build_250x3k", |b| {
        b.iter(|| Fitter::new().full(&small))
    });
    c.bench_function("tree_build_250x20k", |b| {
        b.iter(|| Fitter::new().full(&large))
    });
    // Split-entry-cache ablation: same tree, but every node re-gathers
    // and re-sorts its non-zeros.
    c.bench_function("tree_build_250x3k_rescan", |b| {
        b.iter(|| TreeBuilder::new().fit_rescan(&small))
    });
    c.bench_function("tree_build_250x20k_rescan", |b| {
        b.iter(|| TreeBuilder::new().fit_rescan(&large))
    });
    c.bench_function("cross_validate_10fold_k50", |b| {
        b.iter(|| cross_validate(&small, 7))
    });
    // Fold-parallel cross-validation (bit-identical curve, 4 workers).
    let cv4 = CrossValidation {
        seed: 7,
        workers: 4,
        ..Default::default()
    };
    c.bench_function("cross_validate_10fold_k50_4workers", |b| {
        b.iter(|| cv4.run(&small))
    });

    // D2 ablation: the sparsity-aware search (one root split via a
    // 2-leaf build) vs the naive quadratic scan.
    let tiny = eipv_dataset(120, 500, 40, 3);
    c.bench_function("split_search_sorted(root)", |b| {
        b.iter_batched(
            || tiny.clone(),
            |ds| Fitter::new().max_leaves(2).full(&ds),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("split_search_naive(root)", |b| {
        b.iter(|| naive_best_split(&tiny))
    });
}

criterion_group!(benches, bench_regtree);
criterion_main!(benches);
