//! K-means baseline performance: projection and clustering at suite
//! scale.

use criterion::{criterion_group, criterion_main, Criterion};
use fuzzyphase::cluster::{project, KMeans};
use fuzzyphase::stats::{seeded_rng, SparseVec};
use rand::Rng;

fn vectors(n: usize, features: u32, nnz: usize) -> Vec<SparseVec> {
    let mut rng = seeded_rng(1);
    (0..n)
        .map(|_| {
            SparseVec::from_pairs(
                (0..nnz).map(|_| (rng.gen_range(0..features), rng.gen_range(1.0..4.0))),
            )
        })
        .collect()
}

fn bench_clustering(c: &mut Criterion) {
    let vs = vectors(250, 20_000, 100);
    c.bench_function("project_250x20k_to_15d", |b| {
        b.iter(|| project(&vs, 15, 42))
    });

    let points = project(&vs, 15, 42);
    c.bench_function("kmeans_k10_250x15d", |b| {
        b.iter(|| KMeans::new(10).fit(&points, 7))
    });
    c.bench_function("kmeans_k50_250x15d", |b| {
        b.iter(|| KMeans::new(50).fit(&points, 7))
    });
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
