//! Developer diagnostic: prints per-workload CPI statistics against the
//! paper's anchor values (mean CPI, variance, breakdown shares, unique
//! EIPs, context-switch rate, OS fraction).
//!
//! ```text
//! cargo run --release -p fuzzyphase-bench --bin calibrate -- [intervals] [server|spec|q|all]
//! ```
//!
//! Environment toggles: `SERIES=1` prints the interval CPI series,
//! `COMPVAR=1` the per-component variances, `RE=1` the regression-tree
//! relative-error summary.

use fuzzyphase_profiler::{ProfileConfig, ProfileSession, SamplerSpec};
use fuzzyphase_regtree::{analyze, AnalysisOptions};
use fuzzyphase_workload::appserver::SjasWorkload;
use fuzzyphase_workload::dss::odb_h_query;
use fuzzyphase_workload::oltp::odb_c;
use fuzzyphase_workload::spec::spec_workload;
use fuzzyphase_workload::Workload;

fn report(name: &str, data: &fuzzyphase_profiler::ProfileData) {
    let b = data.mean_breakdown();
    println!(
        "{name:8} cpi={:.3} var={:.4} exe%={:.0} fe%={:.0} work%={:.0} oth%={:.0} ueips={} ctx/s={:.0} os%={:.1} secs={:.2}",
        data.mean_cpi(),
        data.cpi_variance(),
        b.exe / b.total() * 100.0,
        b.fe / b.total() * 100.0,
        b.work / b.total() * 100.0,
        b.other / b.total() * 100.0,
        data.unique_eips(),
        data.context_switches_per_second(),
        data.os_fraction() * 100.0,
        data.seconds,
    );
}

fn run(mut w: impl Workload, cfg: &ProfileConfig) {
    let name = w.name().to_string();
    let data = ProfileSession::run(&mut w, cfg);
    report(&name, &data);
    if std::env::var("RE").is_ok() {
        let eipvs = data.eipvs();
        let rep = analyze(&eipvs.vectors, &eipvs.cpis, &AnalysisOptions::default());
        println!(
            "   RE: min={:.3}@k{} asym={:.3} kopt={} explained={:.0}% | curve[1,2,3,5,9,15,30,50]={:.2} {:.2} {:.2} {:.2} {:.2} {:.2} {:.2} {:.2}",
            rep.re_min, rep.k_at_min, rep.re_asymptote, rep.k_opt,
            rep.explained_variance * 100.0,
            rep.re_curve[0], rep.re_curve[1], rep.re_curve[2], rep.re_curve[4],
            rep.re_curve[8], rep.re_curve[14], rep.re_curve[29], rep.re_curve[49],
        );
    }
    if std::env::var("COMPVAR").is_ok() {
        let work: Vec<f64> = data.intervals.iter().map(|i| i.breakdown.work).collect();
        let fe: Vec<f64> = data.intervals.iter().map(|i| i.breakdown.fe).collect();
        let exe: Vec<f64> = data.intervals.iter().map(|i| i.breakdown.exe).collect();
        let oth: Vec<f64> = data.intervals.iter().map(|i| i.breakdown.other).collect();
        use fuzzyphase_stats::variance;
        println!(
            "   compvar: work={:.5} fe={:.5} exe={:.5} other={:.5} total={:.5}",
            variance(&work),
            variance(&fe),
            variance(&exe),
            variance(&oth),
            data.cpi_variance()
        );
    }
    if std::env::var("SERIES").is_ok() {
        let cpis = data.interval_cpis();
        let s: Vec<String> = cpis.iter().map(|c| format!("{c:.2}")).collect();
        println!("   series: {}", s.join(" "));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(60);
    let cfg = ProfileConfig {
        num_intervals: n,
        ..Default::default()
    };
    let sjas_cfg = ProfileConfig {
        num_intervals: n,
        sampler: SamplerSpec::sjas_rate(),
        ..Default::default()
    };

    let which = args.get(1).map(String::as_str).unwrap_or("all");
    if which == "all" || which == "server" {
        run(odb_c(42), &cfg);
        run(SjasWorkload::new(42), &sjas_cfg);
        run(odb_h_query(13, 42), &cfg);
        run(odb_h_query(18, 42), &cfg);
    }
    if which == "q" {
        for q in [4u8, 8, 15] {
            run(odb_h_query(q, 42), &cfg);
        }
    }
    if which == "all" || which == "spec" {
        for name in [
            "gzip", "mcf", "gcc", "swim", "art", "wupwise", "twolf", "lucas",
        ] {
            run(spec_workload(name, 42), &cfg);
        }
    }
}
