//! Concurrent load generator for `fuzzyphased`, emitting
//! `BENCH_serve.json` with throughput and per-batch latency
//! percentiles.
//!
//! ```text
//! cargo run --release -p fuzzyphase-bench --bin loadgen -- \
//!     [--addr HOST:PORT] [--sessions N] [--samples N] [--batch N] \
//!     [--spv N] [--refit-every N] [--out BENCH_serve.json] [--shutdown]
//! ```
//!
//! With `--addr` it drives an already-running daemon (what the CI smoke
//! job does); without it, it starts an in-process server so the bench
//! is self-contained. Each session streams a deterministic synthetic
//! phase-structured trace and measures, per sample frame, the time from
//! sending the frame to receiving the `Progress` acknowledging it
//! (matched by cumulative sample watermark — replies are in order, so
//! the match is exact). `--shutdown` sends the admin `Shutdown` request
//! when done, letting scripts wait for the daemon to exit.

use fuzzyphase_profiler::Sample;
use fuzzyphase_serve::{ClientControl, ServeClient, Server, ServerConfig, ServerMsg};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Args {
    addr: Option<String>,
    sessions: usize,
    samples: u64,
    batch: usize,
    spv: usize,
    refit_every: usize,
    out: String,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            sessions: 4,
            samples: 100_000,
            batch: 500,
            spv: 100,
            refit_every: 0,
            out: "BENCH_serve.json".to_string(),
            shutdown: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--sessions N] [--samples N] [--batch N] \
         [--spv N] [--refit-every N] [--out FILE] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("loadgen: {name} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => a.addr = Some(val("--addr")),
            "--sessions" => a.sessions = val("--sessions").parse().unwrap_or_else(|_| usage()),
            "--samples" => a.samples = val("--samples").parse().unwrap_or_else(|_| usage()),
            "--batch" => a.batch = val("--batch").parse().unwrap_or_else(|_| usage()),
            "--spv" => a.spv = val("--spv").parse().unwrap_or_else(|_| usage()),
            "--refit-every" => {
                a.refit_every = val("--refit-every").parse().unwrap_or_else(|_| usage())
            }
            "--out" => a.out = val("--out"),
            "--shutdown" => a.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("loadgen: unknown flag '{other}'");
                usage();
            }
        }
    }
    a
}

/// Deterministic synthetic trace: three CPI phases, per-session EIP
/// bands so sessions do not share feature ids.
fn synth_trace(session: usize, n: u64) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let phase = (i / 200) % 3;
            Sample {
                eip: 0x100_0000 * (session as u64 + 1) + phase * 0x2000 + (i % 31) * 0x8,
                thread: session as u32,
                is_os: i % 37 == 0,
                cpi: 0.7 + phase as f64 * 0.5 + (i % 17) as f64 * 0.01,
            }
        })
        .collect()
}

#[derive(Serialize)]
struct SessionStats {
    session: usize,
    samples: u64,
    frames: usize,
    wall_ms: f64,
    throughput_samples_per_sec: f64,
    latency_p50_ms: f64,
    latency_p90_ms: f64,
    latency_p99_ms: f64,
    pauses_seen: u64,
    report_ok: bool,
}

#[derive(Serialize)]
struct BenchReport {
    sessions: usize,
    samples_per_session: u64,
    batch: usize,
    spv: usize,
    refit_every: usize,
    in_process_server: bool,
    wall_ms: f64,
    total_samples: u64,
    aggregate_throughput_samples_per_sec: f64,
    latency_p50_ms: f64,
    latency_p90_ms: f64,
    latency_p99_ms: f64,
    all_reports_ok: bool,
    per_session: Vec<SessionStats>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives one session; returns its stats and raw latencies.
fn run_session(addr: &str, session: usize, args: &Args) -> (SessionStats, Vec<f64>) {
    let trace = synth_trace(session, args.samples);
    let start = Instant::now();
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .hello(&format!("loadgen-{session}"), args.spv, args.refit_every)
        .expect("hello");

    // (cumulative-sample watermark, send instant) for every frame not
    // yet acknowledged by a Progress line.
    let mut outstanding: Vec<(u64, Instant)> = Vec::new();
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut sent: u64 = 0;
    let mut frames = 0usize;

    let mut absorb = |msg: &ServerMsg, outstanding: &mut Vec<(u64, Instant)>| {
        if let ServerMsg::Progress { samples, .. } = msg {
            let now = Instant::now();
            while let Some(&(mark, at)) = outstanding.first() {
                if mark <= *samples {
                    latencies_ms.push(now.duration_since(at).as_secs_f64() * 1e3);
                    outstanding.remove(0);
                } else {
                    break;
                }
            }
        }
    };

    for chunk in trace.chunks(args.batch.max(1)) {
        client.send_samples(chunk).expect("send");
        sent += chunk.len() as u64;
        frames += 1;
        outstanding.push((sent, Instant::now()));
        while let Some(msg) = client.try_recv() {
            absorb(&msg, &mut outstanding);
        }
    }
    client.finish().expect("finish");

    let mut report_ok = false;
    while let Ok(msg) = client.recv() {
        absorb(&msg, &mut outstanding);
        match msg {
            ServerMsg::Report { .. } => report_ok = true,
            ServerMsg::Bye => break,
            ServerMsg::Error { message } => {
                eprintln!("loadgen: session {session}: server error: {message}");
                break;
            }
            _ => {}
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let pauses = client.pauses_seen();
    client.close();

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let stats = SessionStats {
        session,
        samples: sent,
        frames,
        wall_ms: wall * 1e3,
        throughput_samples_per_sec: sent as f64 / wall.max(1e-9),
        latency_p50_ms: percentile(&latencies_ms, 50.0),
        latency_p90_ms: percentile(&latencies_ms, 90.0),
        latency_p99_ms: percentile(&latencies_ms, 99.0),
        pauses_seen: pauses,
        report_ok,
    };
    (stats, latencies_ms)
}

fn main() {
    let args = parse_args();

    // Self-contained mode: no --addr means run the daemon in-process.
    let local = if args.addr.is_none() {
        Some(Server::start(ServerConfig::default()).expect("start in-process server"))
    } else {
        None
    };
    let addr = match (&args.addr, &local) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.local_addr().to_string(),
        (None, None) => unreachable!(),
    };
    eprintln!(
        "loadgen: {} session(s) × {} samples → {}",
        args.sessions, args.samples, addr
    );

    let wall = Instant::now();
    let results: Vec<(SessionStats, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.sessions)
            .map(|i| {
                let addr = addr.clone();
                let args = &args;
                scope.spawn(move || run_session(&addr, i, args))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let mut all_lat: Vec<f64> = results
        .iter()
        .flat_map(|(_, l)| l.iter().copied())
        .collect();
    all_lat.sort_by(|a, b| a.total_cmp(b));
    let total_samples: u64 = results.iter().map(|(s, _)| s.samples).sum();
    let all_ok = results.iter().all(|(s, _)| s.report_ok);

    let report = BenchReport {
        sessions: args.sessions,
        samples_per_session: args.samples,
        batch: args.batch,
        spv: args.spv,
        refit_every: args.refit_every,
        in_process_server: local.is_some(),
        wall_ms: wall_s * 1e3,
        total_samples,
        aggregate_throughput_samples_per_sec: total_samples as f64 / wall_s.max(1e-9),
        latency_p50_ms: percentile(&all_lat, 50.0),
        latency_p90_ms: percentile(&all_lat, 90.0),
        latency_p99_ms: percentile(&all_lat, 99.0),
        all_reports_ok: all_ok,
        per_session: results.into_iter().map(|(s, _)| s).collect(),
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write(&args.out, &json).expect("write bench report");
    eprintln!(
        "loadgen: {:.0} samples/s aggregate, p50 {:.2} ms, p99 {:.2} ms → {}",
        report.aggregate_throughput_samples_per_sec,
        report.latency_p50_ms,
        report.latency_p99_ms,
        args.out
    );

    if args.shutdown {
        let mut admin = ServeClient::connect(&addr).expect("connect for shutdown");
        admin
            .send_control(&ClientControl::Shutdown)
            .expect("send shutdown");
        let _ = admin.recv(); // Bye
        admin.close();
        eprintln!("loadgen: sent Shutdown");
    }
    if let Some(s) = local {
        s.shutdown();
    }
    if !all_ok {
        std::process::exit(1);
    }
}
