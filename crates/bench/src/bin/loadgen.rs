//! Concurrent load generator for `fuzzyphased`, emitting
//! `BENCH_serve.json` with throughput and per-batch latency
//! percentiles.
//!
//! ```text
//! cargo run --release -p fuzzyphase-bench --bin loadgen -- \
//!     [--addr HOST:PORT] [--sessions N] [--samples N] [--batch N] \
//!     [--spv N] [--refit-every N] [--out BENCH_serve.json] [--shutdown] \
//!     [--restart-after N] [--spool-dir DIR] \
//!     [--phase first|resume] [--tokens FILE] [--shards LIST]
//! ```
//!
//! With `--addr` it drives an already-running daemon (what the CI smoke
//! job does); without it, it starts an in-process server so the bench
//! is self-contained. Each session streams a deterministic synthetic
//! phase-structured trace and measures, per sample frame, the time from
//! sending the frame to receiving the `Progress` acknowledging it
//! (matched by cumulative sample watermark — replies are in order, so
//! the match is exact). `--shutdown` sends the admin `Shutdown` request
//! when done, letting scripts wait for the daemon to exit.
//!
//! # Durability modes
//!
//! `--restart-after N` (in-process only) exercises the spool: every
//! session streams N frames and waits for the ack, the daemon is then
//! killed abruptly (no drain, no goodbye), restarted on the same
//! `--spool-dir`, and every session resumes by token and streams the
//! rest. The time from reconnect to the `Hello` reply carrying the
//! durable high-water mark is the *resume latency*, reported as
//! p50/p99 alongside the frame latencies.
//!
//! Against an external daemon the same flow is split across two
//! invocations so a script can SIGKILL the daemon in between:
//! `--phase first` streams N frames per session, waits for the acks,
//! writes each session's resume token to `--tokens`, and exits without
//! finishing; `--phase resume` reads the token file, resumes every
//! session, streams the remainder and writes the bench report.
//!
//! # Shard scaling sweep
//!
//! `--shards 1,2,4,8` (in-process only) runs the whole workload once
//! per listed shard count, asks each daemon for the cross-shard
//! `SuiteReport`, and writes a `scaling` array alongside the usual
//! top-level numbers (which come from the first listed point, so
//! committed baselines keep their meaning). `available_parallelism` is
//! recorded with the curve — a speedup claim means nothing without the
//! core count it ran on.

use fuzzyphase_profiler::Sample;
use fuzzyphase_serve::{ClientControl, ServeClient, Server, ServerConfig, ServerMsg, SpoolConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Debug, Clone)]
struct Args {
    addr: Option<String>,
    sessions: usize,
    samples: u64,
    batch: usize,
    spv: usize,
    refit_every: usize,
    out: String,
    shutdown: bool,
    restart_after: usize,
    spool_dir: Option<String>,
    phase: Option<String>,
    tokens: String,
    shards: Option<Vec<usize>>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            sessions: 4,
            samples: 100_000,
            batch: 500,
            spv: 100,
            refit_every: 0,
            out: "BENCH_serve.json".to_string(),
            shutdown: false,
            restart_after: 0,
            spool_dir: None,
            phase: None,
            tokens: "loadgen-tokens.json".to_string(),
            shards: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--sessions N] [--samples N] [--batch N] \
         [--spv N] [--refit-every N] [--out FILE] [--shutdown] \
         [--restart-after N] [--spool-dir DIR] [--phase first|resume] [--tokens FILE] \
         [--shards LIST (e.g. 1,2,4,8; in-process scaling sweep)]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("loadgen: {name} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => a.addr = Some(val("--addr")),
            "--sessions" => a.sessions = val("--sessions").parse().unwrap_or_else(|_| usage()),
            "--samples" => a.samples = val("--samples").parse().unwrap_or_else(|_| usage()),
            "--batch" => a.batch = val("--batch").parse().unwrap_or_else(|_| usage()),
            "--spv" => a.spv = val("--spv").parse().unwrap_or_else(|_| usage()),
            "--refit-every" => {
                a.refit_every = val("--refit-every").parse().unwrap_or_else(|_| usage())
            }
            "--out" => a.out = val("--out"),
            "--shutdown" => a.shutdown = true,
            "--restart-after" => {
                a.restart_after = val("--restart-after").parse().unwrap_or_else(|_| usage())
            }
            "--spool-dir" => a.spool_dir = Some(val("--spool-dir")),
            "--phase" => a.phase = Some(val("--phase")),
            "--tokens" => a.tokens = val("--tokens"),
            "--shards" => {
                let list: Result<Vec<usize>, _> = val("--shards")
                    .split(',')
                    .map(|s| s.trim().parse())
                    .collect();
                match list {
                    Ok(v) if !v.is_empty() && v.iter().all(|&n| n > 0) => a.shards = Some(v),
                    _ => {
                        eprintln!("loadgen: --shards wants a comma list of positive counts");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("loadgen: unknown flag '{other}'");
                usage();
            }
        }
    }
    if let Some(p) = &a.phase {
        if p != "first" && p != "resume" {
            eprintln!("loadgen: --phase must be 'first' or 'resume', not '{p}'");
            usage();
        }
        if a.addr.is_none() {
            eprintln!("loadgen: --phase needs --addr (use --restart-after for in-process)");
            usage();
        }
        if p == "first" && a.restart_after == 0 {
            eprintln!("loadgen: --phase first needs --restart-after N (frames before the kill)");
            usage();
        }
    }
    if a.shards.is_some() && (a.addr.is_some() || a.phase.is_some() || a.restart_after > 0) {
        eprintln!(
            "loadgen: --shards is an in-process sweep; it cannot combine with \
             --addr, --phase or --restart-after"
        );
        usage();
    }
    if a.restart_after > 0 && (a.restart_after * a.batch) as u64 >= a.samples {
        eprintln!(
            "loadgen: --restart-after {} × --batch {} covers the whole {}-sample trace; \
             nothing would be left to resume",
            a.restart_after, a.batch, a.samples
        );
        usage();
    }
    a
}

/// Deterministic synthetic trace: three CPI phases, per-session EIP
/// bands so sessions do not share feature ids.
fn synth_trace(session: usize, n: u64) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let phase = (i / 200) % 3;
            Sample {
                eip: 0x100_0000 * (session as u64 + 1) + phase * 0x2000 + (i % 31) * 0x8,
                thread: session as u32,
                is_os: i % 37 == 0,
                cpi: 0.7 + phase as f64 * 0.5 + (i % 17) as f64 * 0.01,
            }
        })
        .collect()
}

#[derive(Serialize)]
struct SessionStats {
    session: usize,
    samples: u64,
    frames: usize,
    wall_ms: f64,
    throughput_samples_per_sec: f64,
    latency_p50_ms: f64,
    latency_p90_ms: f64,
    latency_p99_ms: f64,
    pauses_seen: u64,
    report_ok: bool,
    /// Reconnect-to-Hello time when this session resumed, else null.
    resume_latency_ms: Option<f64>,
}

/// A finished session's stats plus its raw sorted ack latencies.
type SessionResult = (SessionStats, Vec<f64>);

/// One point of the `--shards` scaling sweep: the same workload against
/// a daemon running `shards` worker shards.
#[derive(Serialize)]
struct ScalingPoint {
    shards: usize,
    wall_ms: f64,
    aggregate_throughput_samples_per_sec: f64,
    latency_p50_ms: f64,
    latency_p99_ms: f64,
    /// Whether the daemon produced a cross-shard `SuiteReport` over the
    /// finished sessions (the merge path worked end to end).
    suite_ok: bool,
    /// Throughput relative to the sweep's first listed point.
    speedup_vs_first: f64,
}

#[derive(Serialize)]
struct BenchReport {
    sessions: usize,
    samples_per_session: u64,
    batch: usize,
    spv: usize,
    refit_every: usize,
    in_process_server: bool,
    restart_after_frames: usize,
    /// `std::thread::available_parallelism()` on the machine that ran
    /// the bench — the denominator any scaling claim is read against.
    available_parallelism: usize,
    /// The `--shards` sweep, first listed point first; empty when the
    /// sweep was not requested.
    scaling: Vec<ScalingPoint>,
    wall_ms: f64,
    total_samples: u64,
    aggregate_throughput_samples_per_sec: f64,
    latency_p50_ms: f64,
    latency_p90_ms: f64,
    latency_p99_ms: f64,
    sessions_resumed: usize,
    resume_latency_p50_ms: f64,
    resume_latency_p99_ms: f64,
    all_reports_ok: bool,
    per_session: Vec<SessionStats>,
}

/// One line of the `--tokens` handoff file between `--phase first` and
/// `--phase resume`.
#[derive(Serialize, Deserialize)]
struct SessionToken {
    session: usize,
    token: String,
    sent_samples: u64,
    sent_frames: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Frame-latency bookkeeping shared by every streaming loop:
/// (cumulative-sample watermark, send instant) per unacknowledged frame.
struct LatencyTracker {
    outstanding: Vec<(u64, Instant)>,
    latencies_ms: Vec<f64>,
}

impl LatencyTracker {
    fn new() -> Self {
        Self {
            outstanding: Vec::new(),
            latencies_ms: Vec::new(),
        }
    }

    fn absorb(&mut self, msg: &ServerMsg) {
        if let ServerMsg::Progress { samples, .. } = msg {
            let now = Instant::now();
            while let Some(&(mark, at)) = self.outstanding.first() {
                if mark <= *samples {
                    self.latencies_ms
                        .push(now.duration_since(at).as_secs_f64() * 1e3);
                    self.outstanding.remove(0);
                } else {
                    break;
                }
            }
        }
    }
}

/// Streams `trace` in batch-sized frames, tracking ack latency.
/// Returns cumulative samples sent (starting from `already_sent`).
fn stream_frames(
    client: &mut ServeClient,
    trace: &[Sample],
    batch: usize,
    already_sent: u64,
    tracker: &mut LatencyTracker,
) -> (u64, usize) {
    let mut sent = already_sent;
    let mut frames = 0usize;
    for chunk in trace.chunks(batch.max(1)) {
        client.send_samples(chunk).expect("send");
        sent += chunk.len() as u64;
        frames += 1;
        tracker.outstanding.push((sent, Instant::now()));
        while let Some(msg) = client.try_recv() {
            tracker.absorb(&msg);
        }
    }
    (sent, frames)
}

/// Blocks until the server has acknowledged `watermark` samples.
fn wait_for_ack(client: &mut ServeClient, watermark: u64, tracker: &mut LatencyTracker) {
    loop {
        let msg = client.recv().expect("ack before disconnect");
        tracker.absorb(&msg);
        if let ServerMsg::Progress { samples, .. } = msg {
            if samples >= watermark {
                return;
            }
        }
    }
}

/// Drains until the final report, absorbing Progress along the way.
fn wait_for_report(client: &mut ServeClient, session: usize, tracker: &mut LatencyTracker) -> bool {
    let mut report_ok = false;
    while let Ok(msg) = client.recv() {
        tracker.absorb(&msg);
        match msg {
            ServerMsg::Report { .. } => report_ok = true,
            ServerMsg::Bye => break,
            ServerMsg::Error { message } => {
                eprintln!("loadgen: session {session}: server error: {message}");
                break;
            }
            _ => {}
        }
    }
    report_ok
}

/// What a finished session hands to `session_stats` besides latencies.
struct SessionOutcome {
    sent: u64,
    frames: usize,
    wall: f64,
    pauses: u64,
    report_ok: bool,
    resume_latency_ms: Option<f64>,
}

fn session_stats(
    session: usize,
    out: SessionOutcome,
    mut latencies_ms: Vec<f64>,
) -> (SessionStats, Vec<f64>) {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let stats = SessionStats {
        session,
        samples: out.sent,
        frames: out.frames,
        wall_ms: out.wall * 1e3,
        throughput_samples_per_sec: out.sent as f64 / out.wall.max(1e-9),
        latency_p50_ms: percentile(&latencies_ms, 50.0),
        latency_p90_ms: percentile(&latencies_ms, 90.0),
        latency_p99_ms: percentile(&latencies_ms, 99.0),
        pauses_seen: out.pauses,
        report_ok: out.report_ok,
        resume_latency_ms: out.resume_latency_ms,
    };
    (stats, latencies_ms)
}

/// Drives one uninterrupted session; returns its stats and raw latencies.
fn run_session(addr: &str, session: usize, args: &Args) -> (SessionStats, Vec<f64>) {
    let trace = synth_trace(session, args.samples);
    let start = Instant::now();
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .hello(&format!("loadgen-{session}"), args.spv, args.refit_every)
        .expect("hello");

    let mut tracker = LatencyTracker::new();
    let (sent, frames) = stream_frames(&mut client, &trace, args.batch, 0, &mut tracker);
    client.finish().expect("finish");
    let report_ok = wait_for_report(&mut client, session, &mut tracker);
    let wall = start.elapsed().as_secs_f64();
    let pauses = client.pauses_seen();
    client.close();
    session_stats(
        session,
        SessionOutcome {
            sent,
            frames,
            wall,
            pauses,
            report_ok,
            resume_latency_ms: None,
        },
        tracker.latencies_ms,
    )
}

/// Phase one of a durable run: stream the first `restart_after` frames,
/// wait for the ack so they are durably spooled, and walk away without
/// `Finish` — leaving the session resumable.
fn run_first_phase(addr: &str, session: usize, args: &Args) -> (SessionToken, Vec<f64>) {
    let n = (args.restart_after as u64 * args.batch as u64).min(args.samples);
    let trace = synth_trace(session, n);
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .hello(&format!("loadgen-{session}"), args.spv, args.refit_every)
        .expect("hello");
    let token = client
        .resume_token()
        .unwrap_or_else(|| {
            eprintln!("loadgen: daemon issued no resume token (spool not configured?)");
            std::process::exit(1);
        })
        .to_string();

    let mut tracker = LatencyTracker::new();
    let (sent, frames) = stream_frames(&mut client, &trace, args.batch, 0, &mut tracker);
    wait_for_ack(&mut client, sent, &mut tracker);
    client.close();
    (
        SessionToken {
            session,
            token,
            sent_samples: sent,
            sent_frames: frames,
        },
        tracker.latencies_ms,
    )
}

/// Phase two: reconnect, resume by token (timing the reconnect→Hello
/// round trip), retransmit everything past the durable high-water mark,
/// finish, and wait for the report.
fn run_resume_phase(
    addr: &str,
    tok: &SessionToken,
    args: &Args,
    first_latencies: Vec<f64>,
) -> (SessionStats, Vec<f64>) {
    let session = tok.session;
    let trace = synth_trace(session, args.samples);
    let start = Instant::now();
    let mut client = ServeClient::connect(addr).expect("reconnect");
    let reconnect = Instant::now();
    let last_seq = client
        .hello_resume(
            &format!("loadgen-{session}"),
            args.spv,
            args.refit_every,
            &tok.token,
        )
        .expect("resume");
    let resume_ms = reconnect.elapsed().as_secs_f64() * 1e3;
    // Every durable frame was a full batch (phase one sends whole
    // batches only), so the sample offset is exact.
    let covered = (last_seq as usize * args.batch).min(trace.len());

    let mut tracker = LatencyTracker::new();
    tracker.latencies_ms = first_latencies;
    let (sent, frames) = stream_frames(
        &mut client,
        &trace[covered..],
        args.batch,
        covered as u64,
        &mut tracker,
    );
    client.finish().expect("finish");
    let report_ok = wait_for_report(&mut client, session, &mut tracker);
    let wall = start.elapsed().as_secs_f64();
    let pauses = client.pauses_seen();
    client.close();
    session_stats(
        session,
        SessionOutcome {
            sent,
            frames: frames + tok.sent_frames,
            wall,
            pauses,
            report_ok,
            resume_latency_ms: Some(resume_ms),
        },
        tracker.latencies_ms,
    )
}

/// Pools every session's latencies (sorted) with the run's total
/// samples and whether every session got its Report.
fn aggregate(results: &[(SessionStats, Vec<f64>)]) -> (Vec<f64>, u64, bool) {
    let mut all_lat: Vec<f64> = results
        .iter()
        .flat_map(|(_, l)| l.iter().copied())
        .collect();
    all_lat.sort_by(|a, b| a.total_cmp(b));
    let total_samples: u64 = results.iter().map(|(s, _)| s.samples).sum();
    let all_ok = results.iter().all(|(s, _)| s.report_ok);
    (all_lat, total_samples, all_ok)
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn write_report(
    args: &Args,
    in_process: bool,
    wall_s: f64,
    results: Vec<(SessionStats, Vec<f64>)>,
    scaling: Vec<ScalingPoint>,
) {
    let (all_lat, total_samples, all_ok) = aggregate(&results);
    let mut resume_lat: Vec<f64> = results
        .iter()
        .filter_map(|(s, _)| s.resume_latency_ms)
        .collect();
    resume_lat.sort_by(|a, b| a.total_cmp(b));

    let report = BenchReport {
        sessions: args.sessions,
        samples_per_session: args.samples,
        batch: args.batch,
        spv: args.spv,
        refit_every: args.refit_every,
        in_process_server: in_process,
        restart_after_frames: args.restart_after,
        available_parallelism: available_parallelism(),
        scaling,
        wall_ms: wall_s * 1e3,
        total_samples,
        aggregate_throughput_samples_per_sec: total_samples as f64 / wall_s.max(1e-9),
        latency_p50_ms: percentile(&all_lat, 50.0),
        latency_p90_ms: percentile(&all_lat, 90.0),
        latency_p99_ms: percentile(&all_lat, 99.0),
        sessions_resumed: resume_lat.len(),
        resume_latency_p50_ms: percentile(&resume_lat, 50.0),
        resume_latency_p99_ms: percentile(&resume_lat, 99.0),
        all_reports_ok: all_ok,
        per_session: results.into_iter().map(|(s, _)| s).collect(),
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write(&args.out, &json).expect("write bench report");
    eprintln!(
        "loadgen: {:.0} samples/s aggregate, p50 {:.2} ms, p99 {:.2} ms → {}",
        report.aggregate_throughput_samples_per_sec,
        report.latency_p50_ms,
        report.latency_p99_ms,
        args.out
    );
    if report.sessions_resumed > 0 {
        eprintln!(
            "loadgen: {} session(s) resumed, resume p50 {:.2} ms, p99 {:.2} ms",
            report.sessions_resumed, report.resume_latency_p50_ms, report.resume_latency_p99_ms
        );
    }
    for p in &report.scaling {
        eprintln!(
            "loadgen: {} shard(s): {:.0} samples/s, p99 {:.2} ms, {:.2}x vs first, suite {}",
            p.shards,
            p.aggregate_throughput_samples_per_sec,
            p.latency_p99_ms,
            p.speedup_vs_first,
            if p.suite_ok { "ok" } else { "FAILED" }
        );
    }
    let suites_ok = report.scaling.iter().all(|p| p.suite_ok);
    if !all_ok || !suites_ok {
        std::process::exit(1);
    }
}

/// Runs phase one for every session concurrently.
fn first_phases(addr: &str, args: &Args) -> Vec<(SessionToken, Vec<f64>)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.sessions)
            .map(|i| {
                let addr = addr.to_string();
                scope.spawn(move || run_first_phase(&addr, i, args))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    })
}

/// Runs the resume phase for every session concurrently.
fn resume_phases(
    addr: &str,
    args: &Args,
    tokens: Vec<(SessionToken, Vec<f64>)>,
) -> Vec<(SessionStats, Vec<f64>)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = tokens
            .into_iter()
            .map(|(tok, lat)| {
                let addr = addr.to_string();
                scope.spawn(move || run_resume_phase(&addr, &tok, args, lat))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    })
}

/// Runs the full concurrent-session workload against `addr`.
fn run_all_sessions(addr: &str, args: &Args) -> Vec<(SessionStats, Vec<f64>)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.sessions)
            .map(|i| {
                let addr = addr.to_string();
                scope.spawn(move || run_session(&addr, i, args))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    })
}

/// The `--shards` scaling sweep: one in-process daemon per listed shard
/// count, the same workload each time, a `SuiteReport` probe at the
/// end of each point. Top-level report numbers come from the first
/// listed point so the file stays comparable with non-sweep baselines.
fn run_shard_sweep(args: &Args, counts: &[usize]) {
    eprintln!(
        "loadgen: shard sweep {counts:?} — {} session(s) × {} samples each, {} core(s)",
        args.sessions,
        args.samples,
        available_parallelism()
    );
    let mut scaling = Vec::new();
    let mut first: Option<(f64, Vec<SessionResult>)> = None;
    let mut first_tp = 0.0f64;
    for &n in counts {
        let cfg = ServerConfig {
            shards: n,
            ..ServerConfig::default()
        };
        let server = Server::start(cfg).expect("start sweep server");
        let addr = server.local_addr().to_string();
        let wall = Instant::now();
        let results = run_all_sessions(&addr, args);
        let wall_s = wall.elapsed().as_secs_f64();
        let suite_ok = ServeClient::connect(&addr)
            .and_then(|mut c| c.suite_report())
            .is_ok();
        server.shutdown();

        let (all_lat, total_samples, all_ok) = aggregate(&results);
        if !all_ok {
            eprintln!("loadgen: {n}-shard point: a session missed its Report");
            std::process::exit(1);
        }
        let tp = total_samples as f64 / wall_s.max(1e-9);
        if first.is_none() {
            first_tp = tp;
            first = Some((wall_s, results));
        }
        scaling.push(ScalingPoint {
            shards: n,
            wall_ms: wall_s * 1e3,
            aggregate_throughput_samples_per_sec: tp,
            latency_p50_ms: percentile(&all_lat, 50.0),
            latency_p99_ms: percentile(&all_lat, 99.0),
            suite_ok,
            speedup_vs_first: tp / first_tp.max(1e-9),
        });
    }
    let (wall_s, results) = first.expect("at least one sweep point");
    write_report(args, true, wall_s, results, scaling);
}

fn main() {
    let args = parse_args();

    if let Some(counts) = args.shards.clone() {
        run_shard_sweep(&args, &counts);
        return;
    }

    // External two-phase modes (the smoke script kills the daemon in
    // between invocations).
    match args.phase.as_deref() {
        Some("first") => {
            let addr = args.addr.clone().unwrap_or_else(|| usage());
            eprintln!(
                "loadgen: phase one — {} session(s) × {} frame(s) → {}",
                args.sessions, args.restart_after, addr
            );
            let tokens = first_phases(&addr, &args);
            let rows: Vec<&SessionToken> = tokens.iter().map(|(t, _)| t).collect();
            let json = serde_json::to_string_pretty(&rows).expect("serialize tokens");
            std::fs::write(&args.tokens, &json).expect("write tokens file");
            eprintln!(
                "loadgen: {} durable session(s), tokens → {}",
                rows.len(),
                args.tokens
            );
            return;
        }
        Some("resume") => {
            let addr = args.addr.clone().unwrap_or_else(|| usage());
            let data = std::fs::read_to_string(&args.tokens).expect("read tokens file");
            let rows: Vec<SessionToken> = serde_json::from_str(&data).expect("parse tokens file");
            eprintln!(
                "loadgen: phase two — resuming {} session(s) on {}",
                rows.len(),
                addr
            );
            let wall = Instant::now();
            let tokens = rows.into_iter().map(|t| (t, Vec::new())).collect();
            let results = resume_phases(&addr, &args, tokens);
            write_report(
                &args,
                false,
                wall.elapsed().as_secs_f64(),
                results,
                Vec::new(),
            );
            maybe_shutdown(&args, &addr);
            return;
        }
        _ => {}
    }

    // In-process restart mode: stream, kill the daemon abruptly,
    // restart on the same spool, resume, finish.
    if args.restart_after > 0 && args.addr.is_none() {
        let spool_dir = std::path::PathBuf::from(
            args.spool_dir
                .clone()
                .unwrap_or_else(|| "loadgen-spool".to_string()),
        );
        let cfg = ServerConfig {
            spool: Some(SpoolConfig::new(spool_dir.clone())),
            ..ServerConfig::default()
        };
        let server = Server::start(cfg.clone()).expect("start in-process server");
        let addr = server.local_addr().to_string();
        eprintln!(
            "loadgen: {} session(s), killing the daemon after {} frame(s) each",
            args.sessions, args.restart_after
        );

        let wall = Instant::now();
        let tokens = first_phases(&addr, &args);
        server.abort(); // the crash: no drain, no goodbye
        let server = Server::start(cfg).expect("restart in-process server");
        let addr = server.local_addr().to_string();
        let results = resume_phases(&addr, &args, tokens);
        write_report(
            &args,
            true,
            wall.elapsed().as_secs_f64(),
            results,
            Vec::new(),
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&spool_dir);
        return;
    }

    // Self-contained mode: no --addr means run the daemon in-process.
    let local = if args.addr.is_none() {
        let mut cfg = ServerConfig::default();
        if let Some(dir) = &args.spool_dir {
            cfg.spool = Some(SpoolConfig::new(std::path::PathBuf::from(dir)));
        }
        Some(Server::start(cfg).expect("start in-process server"))
    } else {
        None
    };
    let addr = match (&args.addr, &local) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.local_addr().to_string(),
        (None, None) => unreachable!(),
    };
    eprintln!(
        "loadgen: {} session(s) × {} samples → {}",
        args.sessions, args.samples, addr
    );

    let wall = Instant::now();
    let results = run_all_sessions(&addr, &args);
    write_report(
        &args,
        local.is_some(),
        wall.elapsed().as_secs_f64(),
        results,
        Vec::new(),
    );

    maybe_shutdown(&args, &addr);
    if let Some(s) = local {
        s.shutdown();
    }
}

fn maybe_shutdown(args: &Args, addr: &str) {
    if args.shutdown {
        let mut admin = ServeClient::connect(addr).expect("connect for shutdown");
        admin
            .send_control(&ClientControl::Shutdown)
            .expect("send shutdown");
        let _ = admin.recv(); // Bye
        admin.close();
        eprintln!("loadgen: sent Shutdown");
    }
}
