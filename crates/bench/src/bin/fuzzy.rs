//! `fuzzy` — the ad-hoc command-line front end.
//!
//! ```text
//! fuzzy list
//! fuzzy run <benchmark> [--intervals N] [--machine itanium2|pentium4|xeon]
//!                       [--seed S] [--json FILE] [--threads] [--full]
//! fuzzy classify <benchmark> [...same flags]
//! fuzzy sample <benchmark> [--budget N] [...same flags]
//! ```
//!
//! `<benchmark>` is `odb-c`, `sjas`, `q1`..`q22`, or a SPEC CPU2K name.

use fuzzyphase::arch::MachineConfig;
use fuzzyphase::prelude::*;
use fuzzyphase::sampling::{
    evaluate_technique, PhaseSampling, RandomSampling, SmartsSampling, StratifiedPhaseSampling,
    Technique, UniformSampling,
};
use fuzzyphase::Table2Row;

fn usage() -> ! {
    eprintln!(
        "usage: fuzzy <list|run|classify|sample> [benchmark] \
         [--intervals N] [--machine M] [--seed S] [--json FILE] [--threads] [--full] [--budget N]"
    );
    std::process::exit(2);
}

#[derive(Debug)]
struct Args {
    command: String,
    benchmark: Option<String>,
    intervals: usize,
    machine: String,
    seed: u64,
    json: Option<String>,
    threads: bool,
    full: bool,
    budget: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        benchmark: None,
        intervals: 250,
        machine: "itanium2".into(),
        seed: 0xF022_2004,
        json: None,
        threads: false,
        full: false,
        budget: 10,
    };
    let mut it = std::env::args().skip(1);
    let Some(cmd) = it.next() else { usage() };
    args.command = cmd;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--intervals" => {
                args.intervals = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--machine" => args.machine = it.next().unwrap_or_else(|| usage()),
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => args.json = Some(it.next().unwrap_or_else(|| usage())),
            "--threads" => args.threads = true,
            "--full" => args.full = true,
            "--budget" => {
                args.budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            b if !b.starts_with("--") && args.benchmark.is_none() => {
                args.benchmark = Some(b.to_string())
            }
            _ => usage(),
        }
    }
    args
}

fn parse_benchmark(name: &str) -> BenchmarkSpec {
    match name {
        "odb-c" => BenchmarkSpec::odb_c(),
        "sjas" => BenchmarkSpec::sjas(),
        q if q.starts_with('q') && q[1..].parse::<u8>().is_ok() => {
            BenchmarkSpec::odb_h(q[1..].parse().expect("checked"))
        }
        spec => BenchmarkSpec::spec(spec),
    }
}

fn machine(name: &str) -> MachineConfig {
    match name {
        "itanium2" => MachineConfig::itanium2(),
        "pentium4" => MachineConfig::pentium4(),
        "xeon" => MachineConfig::xeon(),
        other => {
            eprintln!("unknown machine: {other} (use itanium2|pentium4|xeon)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "list" => {
            println!(
                "{:<8} {:<9} sampler period (real instructions)",
                "name", "expected"
            );
            for spec in fuzzyphase::all_benchmarks() {
                println!(
                    "{:<8} {:<9} {}",
                    spec.name().to_lowercase(),
                    spec.expected_quadrant.to_string(),
                    spec.sampler.real_period()
                );
            }
        }
        "run" | "classify" | "sample" => {
            let Some(bname) = &args.benchmark else {
                usage()
            };
            let spec = parse_benchmark(bname);
            let mut cfg = AnalysisRequest::new()
                .with_intervals(args.intervals)
                .with_seed(args.seed);
            cfg.profile_mut().machine = machine(&args.machine);
            cfg.profile_mut().collect_full_profile = args.full;

            let r = cfg.run(&spec);
            let b = r.profile.mean_breakdown();
            println!(
                "{} on {} ({} intervals, seed {:#x})",
                r.name, args.machine, args.intervals, args.seed
            );
            println!(
                "  CPI {:.3} = WORK {:.2} + FE {:.2} + EXE {:.2} + OTHER {:.2}",
                b.total(),
                b.work,
                b.fe,
                b.exe,
                b.other
            );
            println!(
                "  variance {:.4}   unique EIPs {}   ctx/s {:.0}   OS {:.1}%",
                r.report.cpi_variance,
                r.profile.unique_eips(),
                r.profile.context_switches_per_second(),
                r.profile.os_fraction() * 100.0
            );
            println!(
                "  RE_min {:.3}@k={}  asymptote {:.3}  k_opt {}  -> {} (paper: {})",
                r.report.re_min,
                r.report.k_at_min,
                r.report.re_asymptote,
                r.report.k_opt,
                r.quadrant,
                r.expected_quadrant
            );
            println!(
                "  recommended sampling: {}",
                r.quadrant.recommendation().name()
            );

            if args.threads {
                let per_thread = r.profile.eipvs_per_thread();
                let rep = analyze(&per_thread.vectors, &per_thread.cpis, cfg.analysis());
                println!(
                    "  thread-separated RE_min {:.3} ({} per-thread vectors)",
                    rep.re_min,
                    per_thread.vectors.len()
                );
            }
            if args.full {
                let full = r.profile.full_profile();
                let rep = analyze(&full.vectors, &full.cpis, cfg.analysis());
                println!(
                    "  full-profile (BBV) RE_min {:.3} ({} features)",
                    rep.re_min, rep.num_features
                );
            }

            if args.command == "sample" {
                let eipvs = r.profile.eipvs();
                let techniques: Vec<Box<dyn Technique>> = vec![
                    Box::new(UniformSampling::new(args.budget)),
                    Box::new(RandomSampling::new(args.budget)),
                    Box::new(PhaseSampling::new(args.budget)),
                    Box::new(StratifiedPhaseSampling::new(
                        (args.budget / 2).max(1),
                        args.budget,
                    )),
                    Box::new(SmartsSampling::new(args.budget.max(2), 0.02)),
                ];
                println!("  technique errors (true CPI {:.3}):", r.report.cpi_mean);
                for t in &techniques {
                    let e = evaluate_technique(t.as_ref(), &eipvs.vectors, &eipvs.cpis, cfg.seed());
                    println!(
                        "    {:11} error {:>6.2}%  cost {:>3}",
                        e.technique,
                        e.relative_error * 100.0,
                        e.cost_intervals
                    );
                }
            }

            if let Some(path) = &args.json {
                let row = Table2Row::from_result(&r);
                match serde_json::to_string_pretty(&row) {
                    Ok(json) => {
                        if let Err(e) = std::fs::write(path, json) {
                            eprintln!("cannot write {path}: {e}");
                        } else {
                            println!("  wrote {path}");
                        }
                    }
                    Err(e) => eprintln!("serialization failed: {e}"),
                }
            }
        }
        _ => usage(),
    }
}
