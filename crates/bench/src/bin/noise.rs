//! Developer diagnostic: decomposes the per-interval CPI noise floor by
//! running a pure-scan DSS-like workload with individual traffic
//! components (locals, stream, branches, OS) selectively disabled.
//!
//! The Q-II quadrant hinges on this floor staying below ~0.0015 CPI²
//! (see DESIGN.md §8); run this after touching the workload or cache
//! models to see where any regression comes from.
//!
//! ```text
//! cargo run --release -p fuzzyphase-bench --bin noise
//! ```
use fuzzyphase_arch::{BranchEvent, DataAccess, Quantum};
use fuzzyphase_profiler::{ProfileConfig, ProfileSession};
use fuzzyphase_stats::prob_round;
use fuzzyphase_workload::access::{in_space, scratch_traffic, MemoryRegion, StreamCursor};
use fuzzyphase_workload::code::CodeRegion;
use fuzzyphase_workload::scheduler::{MultiThreadWorkload, SchedulerConfig, ThreadBehavior};
use rand::rngs::StdRng;
use rand::Rng;

struct ScanThread {
    code: CodeRegion,
    cursor: StreamCursor,
    scratch: MemoryRegion,
    locals: bool,
    branches: bool,
    stream: bool,
}

impl ThreadBehavior for ScanThread {
    fn next_quantum(&mut self, rng: &mut StdRng) -> Quantum {
        let instr = 120u64;
        let eip = self.code.sample_eip(rng);
        let mut data = Vec::new();
        if self.locals {
            scratch_traffic(rng, &self.scratch, instr as f64 * 0.22, &mut data);
        }
        if self.stream {
            let lines = prob_round(rng, instr as f64 * 0.012);
            for _ in 0..lines {
                data.push(DataAccess::read(self.cursor.next_addr()).prefetched());
            }
        }
        let branches: Vec<BranchEvent> = if self.branches {
            (0..4)
                .map(|_| BranchEvent {
                    pc: self.code.sample_eip(rng),
                    taken: rng.gen::<f64>() < 0.9,
                })
                .collect()
        } else {
            vec![]
        };
        let mut fetch = self.code.fetch_run(eip, 3);
        fetch.push(self.code.sample_eip(rng));
        Quantum::compute(eip, instr)
            .with_base_cpi(0.65)
            .with_data(data)
            .with_fetches(fetch, instr as f64 / 32.0 / 4.0)
            .with_branches(branches, instr as f64 * 0.16 / 4.0)
    }
}

fn run(name: &str, locals: bool, branches: bool, stream: bool, os_frac: f64) {
    let table = MemoryRegion::new(in_space(150, 0x1000_0000), 192 << 20);
    let threads: Vec<ScanThread> = (0..4)
        .map(|i| {
            let mut cursor = StreamCursor::new(table, 64);
            cursor.seek(table.bytes() / 4 * i as u64);
            ScanThread {
                code: CodeRegion::new("scan", in_space(150, 0x4_0000_0000), 700, 0.8),
                cursor,
                scratch: MemoryRegion::new(
                    in_space(150, 0x9000_0000 + i as u64 * 0x40_0000),
                    64 * 1024,
                ),
                locals,
                branches,
                stream,
            }
        })
        .collect();
    let mut w =
        MultiThreadWorkload::new("noise", threads, SchedulerConfig::new(5000.0, os_frac), 42);
    let cfg = ProfileConfig {
        num_intervals: 100,
        warmup_intervals: 10,
        ..Default::default()
    };
    let data = ProfileSession::run(&mut w, &cfg);
    let work: Vec<f64> = data.intervals.iter().map(|i| i.breakdown.work).collect();
    let fe: Vec<f64> = data.intervals.iter().map(|i| i.breakdown.fe).collect();
    let exe: Vec<f64> = data.intervals.iter().map(|i| i.breakdown.exe).collect();
    let oth: Vec<f64> = data.intervals.iter().map(|i| i.breakdown.other).collect();
    use fuzzyphase_stats::variance;
    println!(
        "{name:28} cpi={:.3} var={:.5} [work={:.5} fe={:.5} exe={:.5} oth={:.5}]",
        data.mean_cpi(),
        data.cpi_variance(),
        variance(&work),
        variance(&fe),
        variance(&exe),
        variance(&oth)
    );
}

fn main() {
    run("full", true, true, true, 0.04);
    run("no-os", true, true, true, 0.0);
    run("no-locals", false, true, true, 0.04);
    run("no-stream", true, true, false, 0.04);
    run("no-branches", true, false, true, 0.04);
    run("bare (base_cpi only)", false, false, false, 0.0);
}
