//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p fuzzyphase-bench --release --bin figures -- <experiment> [--fast]
//! ```
//!
//! Experiments: `table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//! fig11 fig12 fig13 table2 sec46 sec52 sec71-machines sec71-eipv sec31
//! sec7-sampling ext-bbv ext-smp ext-detectors ext-predictors ext-metrics
//! ext-early all`. `--fast`
//! runs shorter profiles (for smoke tests).
//!
//! Each experiment prints the paper's series/rows and writes machine-
//! readable JSON into `EXPERIMENTS-data/`.

use fuzzyphase::arch::MachineConfig;
use fuzzyphase::cluster::{default_k_grid, kmeans_re_curve};
use fuzzyphase::prelude::*;
use fuzzyphase::profiler::overhead_fraction;
use fuzzyphase::regtree::Fitter;
use fuzzyphase::report::format_table2;
use fuzzyphase::sampling::{
    evaluate_technique, PhaseSampling, RandomSampling, SmartsSampling, StratifiedPhaseSampling,
    Technique, UniformSampling,
};
use fuzzyphase::{suite, AnalysisRequest};
use fuzzyphase_bench::{export_json, re_curve_block, sparkline};
use serde::Serialize;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let cfg = config(fast);
    match which {
        "table1" => table1(),
        "fig2" => fig2(&cfg),
        "fig3" => fig3(&cfg),
        "fig4" => breakdown_figure(&cfg, BenchmarkSpec::odb_c(), "fig4"),
        "fig5" => breakdown_figure(&cfg, BenchmarkSpec::sjas(), "fig5"),
        "fig6" => thread_figure(&cfg, BenchmarkSpec::odb_c(), "fig6"),
        "fig7" => thread_figure(&cfg, BenchmarkSpec::sjas(), "fig7"),
        "fig8" => re_figure(&cfg, BenchmarkSpec::odb_h(13), "fig8"),
        "fig9" => spread_figure(&cfg, BenchmarkSpec::odb_h(13), "fig9"),
        "fig10" => re_figure(&cfg, BenchmarkSpec::odb_h(18), "fig10"),
        "fig11" => spread_figure(&cfg, BenchmarkSpec::odb_h(18), "fig11"),
        "fig12" => breakdown_figure(&cfg, BenchmarkSpec::odb_h(18), "fig12"),
        "fig13" | "table2" => table2(&cfg, which),
        "sec46" => sec46(&cfg, fast),
        "sec52" => sec52(&cfg),
        "sec71-machines" => sec71_machines(&cfg),
        "sec71-eipv" => sec71_eipv(&cfg, fast),
        "sec31" => sec31(),
        "sec7-sampling" => sec7_sampling(&cfg),
        "ext-bbv" => ext_bbv(&cfg),
        "ext-smp" => ext_smp(&cfg),
        "ext-detectors" => ext_detectors(&cfg),
        "ext-predictors" => ext_predictors(&cfg),
        "ext-metrics" => ext_metrics(&cfg),
        "ext-early" => ext_early(&cfg),
        "all" => {
            table1();
            fig2(&cfg);
            fig3(&cfg);
            breakdown_figure(&cfg, BenchmarkSpec::odb_c(), "fig4");
            breakdown_figure(&cfg, BenchmarkSpec::sjas(), "fig5");
            thread_figure(&cfg, BenchmarkSpec::odb_c(), "fig6");
            thread_figure(&cfg, BenchmarkSpec::sjas(), "fig7");
            re_figure(&cfg, BenchmarkSpec::odb_h(13), "fig8");
            spread_figure(&cfg, BenchmarkSpec::odb_h(13), "fig9");
            re_figure(&cfg, BenchmarkSpec::odb_h(18), "fig10");
            spread_figure(&cfg, BenchmarkSpec::odb_h(18), "fig11");
            breakdown_figure(&cfg, BenchmarkSpec::odb_h(18), "fig12");
            table2(&cfg, "table2");
            sec46(&cfg, fast);
            sec52(&cfg);
            sec71_machines(&cfg);
            sec71_eipv(&cfg, fast);
            sec31();
            sec7_sampling(&cfg);
            ext_bbv(&cfg);
            ext_smp(&cfg);
            ext_detectors(&cfg);
            ext_predictors(&cfg);
            ext_metrics(&cfg);
            ext_early(&cfg);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn config(fast: bool) -> AnalysisRequest {
    if fast {
        AnalysisRequest::new().with_intervals(40).with_warmup(6)
    } else {
        AnalysisRequest::new()
    }
}

// ---------------------------------------------------------------- table1

/// Table 1 / Figure 1: the worked regression-tree example.
fn table1() {
    use fuzzyphase::regtree::Dataset;
    println!("== Table 1 + Figure 1: worked example ==");
    let ds = Dataset::paper_example();
    println!("      EIP0  EIP1  EIP2   CPI");
    for i in 0..ds.len() {
        let r = ds.row(i);
        println!(
            "EIPV{i}  {:>4} {:>5} {:>5}  {:>4.1}",
            r.get(0),
            r.get(1),
            r.get(2),
            ds.target(i)
        );
    }
    let tree = Fitter::new().max_leaves(4).full(&ds);
    println!("\nFitted 4-chamber tree:");
    print_tree(&tree, 0, 0);
    export_json("table1_tree", &tree);
}

fn print_tree(tree: &fuzzyphase::regtree::RegressionTree, idx: u32, depth: usize) {
    let n = &tree.nodes()[idx as usize];
    let pad = "  ".repeat(depth + 1);
    match n.split {
        Some(s) => {
            println!("{pad}(EIP{}, {:.0})", s.feature, s.threshold);
            print_tree(tree, n.left.expect("internal"), depth + 1);
            print_tree(tree, n.right.expect("internal"), depth + 1);
        }
        None => println!("{pad}chamber: mean CPI {:.2} ({} EIPVs)", n.mean, n.count),
    }
}

// ----------------------------------------------------------------- fig2

#[derive(Serialize)]
struct ReExport {
    name: String,
    re: Vec<f64>,
    cpi_variance: f64,
    re_min: f64,
    k_at_min: usize,
    k_opt: usize,
}

fn report_to_export(name: &str, rep: &PredictabilityReport) -> ReExport {
    ReExport {
        name: name.to_string(),
        re: rep.re_curve.clone(),
        cpi_variance: rep.cpi_variance,
        re_min: rep.re_min,
        k_at_min: rep.k_at_min,
        k_opt: rep.k_opt,
    }
}

/// Figure 2: relative error vs chambers for ODB-C and SjAS.
fn fig2(cfg: &AnalysisRequest) {
    println!("== Figure 2: RE_k for ODB-C and SjAS ==");
    let mut exports = Vec::new();
    for spec in [BenchmarkSpec::odb_c(), BenchmarkSpec::sjas()] {
        let r = cfg.run(&spec);
        print!("{}", re_curve_block(&r.name, &r.report.re_curve));
        println!(
            "  {:10} var={:.4} re_min={:.3}@k={} (paper: ODB-C rises above 1; SjAS ~0.96 flat, min ~0.8 at k=3)",
            r.name, r.report.cpi_variance, r.report.re_min, r.report.k_at_min
        );
        exports.push(report_to_export(&r.name, &r.report));
    }
    export_json("fig2", &exports);
}

// ----------------------------------------------------------------- fig3

#[derive(Serialize)]
struct SpreadExport {
    name: String,
    unique_eips: usize,
    seconds: f64,
    cpi_series: Vec<f64>,
    eip_rank_series: Vec<f64>,
}

fn spread_of(profile: &ProfileData) -> SpreadExport {
    // EIP spread: rank each sample's EIP by first appearance, like the
    // scatter plots in Figures 3/9/11.
    let mut rank = std::collections::HashMap::new();
    let mut series = Vec::with_capacity(profile.samples.len());
    for s in &profile.samples {
        let next = rank.len() as f64;
        let r = *rank.entry(s.eip).or_insert(next);
        series.push(r);
    }
    SpreadExport {
        name: profile.name.clone(),
        unique_eips: profile.unique_eips(),
        seconds: profile.seconds,
        cpi_series: profile.samples.iter().map(|s| s.cpi).collect(),
        eip_rank_series: series,
    }
}

fn print_spread(sp: &SpreadExport) {
    println!(
        "  {:8} unique EIPs: {:>6}  ({:.0} simulated seconds)",
        sp.name, sp.unique_eips, sp.seconds
    );
    println!(
        "  {:8} EIP rank: {}",
        "",
        sparkline(&sp.eip_rank_series, 64)
    );
    println!("  {:8} CPI:      {}", "", sparkline(&sp.cpi_series, 64));
}

/// Figure 3: EIP & CPI spread of ODB-C and SjAS (plus mcf for contrast).
fn fig3(cfg: &AnalysisRequest) {
    println!("== Figure 3: EIP & CPI spread (paper: ODB-C ~24K, SjAS ~31K unique EIPs; mcf only ~646) ==");
    let mut exports = Vec::new();
    for spec in [
        BenchmarkSpec::odb_c(),
        BenchmarkSpec::sjas(),
        BenchmarkSpec::spec("mcf"),
    ] {
        let r = cfg.run(&spec);
        let sp = spread_of(&r.profile);
        print_spread(&sp);
        exports.push(sp);
    }
    export_json("fig3", &exports);
}

/// Figures 9 / 11: per-query spread.
fn spread_figure(cfg: &AnalysisRequest, spec: BenchmarkSpec, tag: &str) {
    println!("== {tag}: EIP & CPI spread for {} ==", spec.name());
    let r = cfg.run(&spec);
    let sp = spread_of(&r.profile);
    print_spread(&sp);
    export_json(tag, &sp);
}

// ------------------------------------------------------- fig4/fig5/fig12

#[derive(Serialize)]
struct BreakdownExport {
    name: String,
    cpi: Vec<f64>,
    work: Vec<f64>,
    fe: Vec<f64>,
    exe: Vec<f64>,
    other: Vec<f64>,
}

/// Figures 4, 5, 12: CPI component breakdown over time.
fn breakdown_figure(cfg: &AnalysisRequest, spec: BenchmarkSpec, tag: &str) {
    println!("== {tag}: CPI breakdown for {} ==", spec.name());
    let r = cfg.run(&spec);
    let intervals = &r.profile.intervals;
    let get = |f: fn(&fuzzyphase::arch::CpiBreakdown) -> f64| -> Vec<f64> {
        intervals.iter().map(|i| f(&i.breakdown)).collect()
    };
    let ex = BreakdownExport {
        name: r.name.clone(),
        cpi: r.profile.interval_cpis(),
        work: get(|b| b.work),
        fe: get(|b| b.fe),
        exe: get(|b| b.exe),
        other: get(|b| b.other),
    };
    let mean = r.profile.mean_breakdown();
    println!(
        "  mean CPI {:.2} = WORK {:.2} + FE {:.2} + EXE {:.2} + OTHER {:.2}  (EXE share {:.0}%)",
        mean.total(),
        mean.work,
        mean.fe,
        mean.exe,
        mean.other,
        mean.exe_fraction() * 100.0
    );
    println!("  CPI   {}", sparkline(&ex.cpi, 64));
    println!("  EXE   {}", sparkline(&ex.exe, 64));
    println!("  FE    {}", sparkline(&ex.fe, 64));
    println!("  WORK  {}", sparkline(&ex.work, 64));
    println!("  OTHER {}", sparkline(&ex.other, 64));
    match tag {
        "fig4" => println!("  (paper: ODB-C EXE > 50% of CPI throughout)"),
        "fig5" => println!("  (paper: SjAS EXE 30-40% of CPI)"),
        "fig12" => {
            println!("  (paper: Q18 has no single dominant bottleneck; it shifts over time)")
        }
        _ => {}
    }
    export_json(tag, &ex);
}

// -------------------------------------------------------------- fig6/7

/// Figures 6, 7: RE with and without per-thread separation.
fn thread_figure(cfg: &AnalysisRequest, spec: BenchmarkSpec, tag: &str) {
    println!("== {tag}: thread separation for {} ==", spec.name());
    let r = cfg.run(&spec);
    let nothread = r.report.clone();

    let per_thread = r.profile.eipvs_per_thread();
    let thread_rep =
        fuzzyphase::regtree::analyze(&per_thread.vectors, &per_thread.cpis, cfg.analysis());
    print!("{}", re_curve_block("nothread", &nothread.re_curve));
    print!("{}", re_curve_block("thread", &thread_rep.re_curve));
    println!(
        "  re_min: nothread={:.3}  thread={:.3}  (paper: separation helps, but only minimally)",
        nothread.re_min, thread_rep.re_min
    );
    export_json(
        tag,
        &vec![
            report_to_export("nothread", &nothread),
            report_to_export("thread", &thread_rep),
        ],
    );
}

// -------------------------------------------------------------- fig8/10

/// Figures 8, 10: per-query RE curves.
fn re_figure(cfg: &AnalysisRequest, spec: BenchmarkSpec, tag: &str) {
    println!("== {tag}: RE_k for {} ==", spec.name());
    let r = cfg.run(&spec);
    print!("{}", re_curve_block(&r.name, &r.report.re_curve));
    println!(
        "  var={:.4} re_min={:.3}@k={} asymptote={:.3} k_opt={}",
        r.report.cpi_variance,
        r.report.re_min,
        r.report.k_at_min,
        r.report.re_asymptote,
        r.report.k_opt
    );

    // Which code carries the CPI signal: fit one tree on the whole run and
    // map the top split EIPs back to the DSS operator regions.
    let eipvs = r.profile.eipvs();
    let ds = fuzzyphase::regtree::Dataset::new(eipvs.vectors.clone(), eipvs.cpis.clone());
    let tree = Fitter::new().full(&ds);
    let db = fuzzyphase::workload::dss::DssDatabase::new();
    let region_of = |eip: u64| -> String {
        db.code
            .iter()
            .find(|c| eip >= c.base() && eip < c.end())
            .map(|c| c.name().to_string())
            .unwrap_or_else(|| "other".to_string())
    };
    let importance = tree.feature_importance();
    let total: f64 = importance.iter().map(|(_, g)| g).sum();
    if total > 0.0 {
        let top: Vec<String> = importance
            .iter()
            .take(5)
            .map(|&(f, g)| {
                format!(
                    "{} ({:.0}%)",
                    region_of(eipvs.index.eip(f)),
                    g / total * 100.0
                )
            })
            .collect();
        println!("  top split EIPs by variance reduction: {}", top.join(", "));
    }
    match tag {
        "fig8" => println!("  (paper: Q13 falls rapidly, asymptote ~0.15 at k_opt=9)"),
        "fig10" => println!("  (paper: Q18 stays flat around 1.1)"),
        _ => {}
    }
    export_json(tag, &report_to_export(&r.name, &r.report));
}

// --------------------------------------------------------- fig13/table2

/// Figure 13 + Table 2: the full quadrant classification.
fn table2(cfg: &AnalysisRequest, tag: &str) {
    println!("== Figure 13 / Table 2: quadrant classification of the full suite ==");
    let t0 = std::time::Instant::now();
    let result = cfg.run_suite(&suite::all_benchmarks());
    println!("{}", format_table2(&result));
    println!("(suite ran in {:.0?})", t0.elapsed());
    let rows: Vec<fuzzyphase::Table2Row> = result
        .benchmarks
        .iter()
        .map(fuzzyphase::Table2Row::from_result)
        .collect();
    export_json(tag, &rows);
}

// ----------------------------------------------------------------- sec46

#[derive(Serialize)]
struct Sec46Row {
    name: String,
    tree_re_min: f64,
    kmeans_re_min: f64,
    tree_explained: f64,
    kmeans_explained: f64,
}

/// §4.6: regression trees vs k-means CPI predictability.
fn sec46(cfg: &AnalysisRequest, fast: bool) {
    println!("== §4.6: regression tree vs k-means CPI predictability ==");
    let specs: Vec<BenchmarkSpec> = if fast {
        vec![
            BenchmarkSpec::odb_h(13),
            BenchmarkSpec::odb_h(18),
            BenchmarkSpec::spec("mcf"),
            BenchmarkSpec::spec("gzip"),
        ]
    } else {
        suite::all_benchmarks()
    };
    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for spec in &specs {
        let r = cfg.run(spec);
        let eipvs = r.profile.eipvs();
        let km = kmeans_re_curve(
            &eipvs.vectors,
            &eipvs.cpis,
            &default_k_grid(),
            15,
            10,
            cfg.seed(),
        );
        let row = Sec46Row {
            name: r.name.clone(),
            tree_re_min: r.report.re_min,
            kmeans_re_min: km.re_min().0,
            tree_explained: r.report.explained_variance,
            kmeans_explained: km.explained_variance(),
        };
        println!(
            "  {:8} tree RE_min={:.3} (explains {:>3.0}%)  kmeans RE_min={:.3} (explains {:>3.0}%)",
            row.name,
            row.tree_re_min,
            row.tree_explained * 100.0,
            row.kmeans_re_min,
            row.kmeans_explained * 100.0
        );
        // The paper's comparison statistic is the *error* reduction on
        // workloads where control flow carries any signal (for pure-noise
        // benchmarks both methods sit at RE ~ 1 by construction).
        if row.kmeans_re_min < 0.9 || row.tree_re_min < 0.9 {
            improvements.push(1.0 - row.tree_re_min / row.kmeans_re_min.max(1e-9));
        }
        rows.push(row);
    }
    let mean_reduction: f64 = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
    println!(
        "\n  mean CPI-predictability-error reduction, trees vs k-means, over the {} benchmarks with signal: {:.0}% (paper: ~80%)",
        improvements.len(),
        mean_reduction * 100.0
    );
    export_json("sec46", &rows);
}

// ----------------------------------------------------------------- sec52

#[derive(Serialize)]
struct Sec52Row {
    name: String,
    context_switches_per_second: f64,
    os_fraction: f64,
    mean_cpi: f64,
}

/// §5.2: threading/OS statistics.
fn sec52(cfg: &AnalysisRequest) {
    println!("== §5.2: context switching and OS time ==");
    println!("  (paper: ODB-C ~2600 switches/s & ~15% OS; SjAS ~5000/s; SPEC ~25/s & <1% OS)");
    let mut rows = Vec::new();
    for spec in [
        BenchmarkSpec::odb_c(),
        BenchmarkSpec::sjas(),
        BenchmarkSpec::spec("gzip"),
        BenchmarkSpec::spec("mcf"),
    ] {
        let r = cfg.run(&spec);
        let row = Sec52Row {
            name: r.name.clone(),
            context_switches_per_second: r.profile.context_switches_per_second(),
            os_fraction: r.profile.os_fraction(),
            mean_cpi: r.profile.mean_cpi(),
        };
        println!(
            "  {:8} {:>6.0} switches/s   OS {:>4.1}%   CPI {:.2}",
            row.name,
            row.context_switches_per_second,
            row.os_fraction * 100.0,
            row.mean_cpi
        );
        rows.push(row);
    }
    export_json("sec52", &rows);
}

// -------------------------------------------------------- sec71-machines

#[derive(Serialize)]
struct MachineRow {
    name: String,
    machine: String,
    cpi_variance: f64,
    re_min: f64,
    mean_cpi: f64,
}

/// §7.1: the Pentium 4 / Xeon robustness check over a SPEC subset.
fn sec71_machines(cfg: &AnalysisRequest) {
    println!("== §7.1: machine robustness (SPEC subset on Itanium2/P4/Xeon) ==");
    println!("  (paper: variance higher on both; RE ~30% better on P4, ~7% worse on Xeon; mcf variance highest on the L3-less P4)");
    let subset = [
        "gzip", "mcf", "gcc", "swim", "twolf", "art", "wupwise", "lucas",
    ];
    let machines = [
        MachineConfig::itanium2(),
        MachineConfig::pentium4(),
        MachineConfig::xeon(),
    ];
    let mut rows = Vec::new();
    let mut per_machine: std::collections::HashMap<String, Vec<(f64, f64)>> = Default::default();
    for name in subset {
        for m in &machines {
            let mut c = cfg.clone();
            c.profile_mut().machine = m.clone();
            let r = c.run(&BenchmarkSpec::spec(name));
            println!(
                "  {:8} on {:9} var={:.4} re_min={:.3} cpi={:.2}",
                name, m.name, r.report.cpi_variance, r.report.re_min, r.report.cpi_mean
            );
            per_machine
                .entry(m.name.clone())
                .or_default()
                .push((r.report.cpi_variance, r.report.re_min));
            rows.push(MachineRow {
                name: name.to_string(),
                machine: m.name.clone(),
                cpi_variance: r.report.cpi_variance,
                re_min: r.report.re_min,
                mean_cpi: r.report.cpi_mean,
            });
        }
    }
    let avg = |m: &str, f: fn(&(f64, f64)) -> f64| -> f64 {
        let v = &per_machine[m];
        v.iter().map(f).sum::<f64>() / v.len() as f64
    };
    println!(
        "\n  mean variance: itanium2 {:.4}  pentium4 {:.4}  xeon {:.4}",
        avg("itanium2", |x| x.0),
        avg("pentium4", |x| x.0),
        avg("xeon", |x| x.0)
    );
    println!(
        "  mean RE_min:   itanium2 {:.3}  pentium4 {:.3}  xeon {:.3}",
        avg("itanium2", |x| x.1),
        avg("pentium4", |x| x.1),
        avg("xeon", |x| x.1)
    );
    export_json("sec71_machines", &rows);
}

// ------------------------------------------------------------ sec71-eipv

#[derive(Serialize)]
struct EipvSizeRow {
    name: String,
    interval_m_instructions: u64,
    cpi_variance: f64,
    re_min: f64,
    quadrant: String,
}

/// §7.1: EIPV interval-size sweep (100M / 50M / 10M) at fixed sampling
/// frequency.
fn sec71_eipv(cfg: &AnalysisRequest, fast: bool) {
    println!("== §7.1: EIPV size sweep (100M/50M/10M at fixed sampling rate) ==");
    println!("  (paper: 50M: var +7%, RE +13%; 10M: var +29%, RE +14%; some Q-IV -> Q-III)");
    let specs: Vec<BenchmarkSpec> = if fast {
        vec![BenchmarkSpec::odb_h(13), BenchmarkSpec::spec("mcf")]
    } else {
        vec![
            BenchmarkSpec::odb_h(13),
            BenchmarkSpec::odb_h(6),
            BenchmarkSpec::odb_h(18),
            BenchmarkSpec::spec("mcf"),
            BenchmarkSpec::spec("art"),
            BenchmarkSpec::spec("swim"),
            BenchmarkSpec::spec("gcc"),
            BenchmarkSpec::spec("gzip"),
        ]
    };
    let mut rows = Vec::new();
    let mut ratios: std::collections::HashMap<u64, Vec<(f64, f64)>> = Default::default();
    for spec in &specs {
        let r = cfg.run(spec);
        let spv_100 = (r.profile.interval_len / r.profile.period) as usize;
        let mut base = (0.0, 0.0);
        for (m, frac) in [(100u64, 1.0), (50, 0.5), (10, 0.1)] {
            let spv = ((spv_100 as f64 * frac) as usize).max(1);
            let eipvs = r.profile.eipvs_with_samples_per_vector(spv);
            let rep = fuzzyphase::regtree::analyze(&eipvs.vectors, &eipvs.cpis, cfg.analysis());
            let quad = cfg.thresholds().classify(rep.cpi_variance, rep.re_min);
            if m == 100 {
                base = (rep.cpi_variance, rep.re_min);
            } else {
                ratios.entry(m).or_default().push((
                    rep.cpi_variance / base.0.max(1e-12),
                    rep.re_min / base.1.max(1e-12),
                ));
            }
            println!(
                "  {:8} @{m:>3}M  var={:.4} re_min={:.3} -> {quad}",
                r.name, rep.cpi_variance, rep.re_min
            );
            rows.push(EipvSizeRow {
                name: r.name.clone(),
                interval_m_instructions: m,
                cpi_variance: rep.cpi_variance,
                re_min: rep.re_min,
                quadrant: quad.to_string(),
            });
        }
    }
    for m in [50u64, 10] {
        let v = &ratios[&m];
        let var_up = (v.iter().map(|x| x.0).sum::<f64>() / v.len() as f64 - 1.0) * 100.0;
        let re_up = (v.iter().map(|x| x.1).sum::<f64>() / v.len() as f64 - 1.0) * 100.0;
        println!("  {m}M vs 100M: variance {var_up:+.0}%  RE {re_up:+.0}%");
    }
    export_json("sec71_eipv", &rows);
}

// ----------------------------------------------------------------- sec31

/// §3.1: sampling overhead model.
fn sec31() {
    println!("== §3.1: VTune sampling overhead vs period ==");
    println!("  (paper anchors: ~2% at 1M instructions; ~5% worst case at 100K)");
    let mut rows = Vec::new();
    for period in [10_000_000u64, 1_000_000, 500_000, 100_000, 50_000] {
        let ov = overhead_fraction(period);
        println!(
            "  period {:>9} instructions -> overhead {:.1}%",
            period,
            ov * 100.0
        );
        rows.push((period, ov));
    }
    export_json("sec31", &rows);
}

// --------------------------------------------------------- sec7-sampling

#[derive(Serialize)]
struct SamplingRow {
    benchmark: String,
    quadrant: String,
    technique: String,
    relative_error_pct: f64,
    cost_intervals: usize,
}

/// §7 prose: sampling-technique error per quadrant representative.
fn sec7_sampling(cfg: &AnalysisRequest) {
    println!("== §7: sampling technique error by quadrant ==");
    let reps = [
        BenchmarkSpec::odb_c(),         // Q-I
        BenchmarkSpec::spec("wupwise"), // Q-II
        BenchmarkSpec::odb_h(18),       // Q-III
        BenchmarkSpec::spec("mcf"),     // Q-IV
    ];
    let mut rows = Vec::new();
    for spec in reps {
        let r = cfg.run(&spec);
        let eipvs = r.profile.eipvs();
        let budget = 10usize;
        let techniques: Vec<Box<dyn Technique>> = vec![
            Box::new(UniformSampling::new(budget)),
            Box::new(RandomSampling::new(budget)),
            Box::new(PhaseSampling::new(budget)),
            Box::new(StratifiedPhaseSampling::new(5, budget)),
            Box::new(SmartsSampling::new(budget, 0.02)),
        ];
        println!(
            "  {} ({}) — recommended: {}",
            r.name,
            r.quadrant,
            r.quadrant.recommendation().name()
        );
        for t in &techniques {
            let e = evaluate_technique(t.as_ref(), &eipvs.vectors, &eipvs.cpis, cfg.seed());
            println!(
                "    {:11} error {:>6.2}%  cost {:>3} intervals",
                e.technique,
                e.relative_error * 100.0,
                e.cost_intervals
            );
            rows.push(SamplingRow {
                benchmark: r.name.clone(),
                quadrant: r.quadrant.to_string(),
                technique: e.technique,
                relative_error_pct: e.relative_error * 100.0,
                cost_intervals: e.cost_intervals,
            });
        }
    }
    export_json("sec7_sampling", &rows);
}

// ---------------------------------------------------------------- ext-bbv

#[derive(Serialize)]
struct BbvRow {
    name: String,
    eipv_re_min: f64,
    bbv_re_min: f64,
    eipv_features: usize,
    bbv_features: usize,
}

/// §3.3 future work: sampled EIPVs vs full-profile (BBV-style) vectors.
/// VTune could not collect the latter; the simulator can.
fn ext_bbv(cfg: &AnalysisRequest) {
    println!("== ext-bbv (§3.3): sampled EIPVs vs full-profile vectors ==");
    let mut rows = Vec::new();
    for spec in [
        BenchmarkSpec::odb_h(13),
        BenchmarkSpec::odb_h(18),
        BenchmarkSpec::spec("mcf"),
        BenchmarkSpec::spec("wupwise"),
        BenchmarkSpec::odb_c(),
    ] {
        let seed = fuzzyphase::stats::SeedSequence::new(cfg.seed()).seed_for(&spec.name());
        let mut workload = spec.build(seed, None);
        let mut pcfg = cfg.profile().clone();
        pcfg.sampler = spec.sampler;
        pcfg.collect_full_profile = true;
        let profile = ProfileSession::run(&mut workload, &pcfg);

        let eipvs = profile.eipvs();
        let sampled = fuzzyphase::regtree::analyze(&eipvs.vectors, &eipvs.cpis, cfg.analysis());
        let full = profile.full_profile();
        let full_rep = fuzzyphase::regtree::analyze(&full.vectors, &full.cpis, cfg.analysis());
        println!(
            "  {:8} EIPV: RE_min {:.3} ({} features)   BBV: RE_min {:.3} ({} features)",
            spec.name(),
            sampled.re_min,
            sampled.num_features,
            full_rep.re_min,
            full_rep.num_features
        );
        rows.push(BbvRow {
            name: spec.name(),
            eipv_re_min: sampled.re_min,
            bbv_re_min: full_rep.re_min,
            eipv_features: sampled.num_features,
            bbv_features: full_rep.num_features,
        });
    }
    println!("  (full profiling removes sampling noise; predictable workloads gain, unpredictable ones stay unpredictable)");
    export_json("ext_bbv", &rows);
}

// ----------------------------------------------------------- ext-detectors

#[derive(Serialize)]
struct DetectorRow {
    name: String,
    sig_vs_vector: f64,
    branch_vs_vector: f64,
    sig_vs_branch: f64,
}

/// §7 context: Dhodapkar & Smith found branch-count phase detection
/// agrees with BBVs ~83% of the time. Measure detector agreement here.
fn ext_detectors(cfg: &AnalysisRequest) {
    use fuzzyphase::cluster::{
        agreement, BranchCountDetector, PhaseDetector, SignatureDetector, VectorDetector,
    };
    println!("== ext-detectors (§7): phase-detector agreement (paper cites ~83% for branch-count vs BBV) ==");
    let mut rows = Vec::new();
    let mut all_bv = Vec::new();
    for spec in [
        BenchmarkSpec::spec("mcf"),
        BenchmarkSpec::spec("art"),
        BenchmarkSpec::spec("gzip"),
        BenchmarkSpec::spec("gcc"),
        BenchmarkSpec::spec("wupwise"),
        BenchmarkSpec::odb_h(13),
        BenchmarkSpec::odb_h(18),
        BenchmarkSpec::odb_c(),
    ] {
        // Working-set detectors need the *full* per-interval footprint
        // (Dhodapkar & Smith instrument every block); 100-sample EIPVs
        // are too sparse — two samples of the same phase look disjoint.
        let seed = fuzzyphase::stats::SeedSequence::new(cfg.seed()).seed_for(&spec.name());
        let mut workload = spec.build(seed, None);
        let mut pcfg = cfg.profile().clone();
        pcfg.sampler = spec.sampler;
        pcfg.collect_full_profile = true;
        let profile = ProfileSession::run(&mut workload, &pcfg);
        let full = profile.full_profile();
        let branch_pki: Vec<f64> = profile.intervals.iter().map(|i| i.branch_pki).collect();
        let sig = SignatureDetector::default().detect(&full.vectors, &branch_pki);
        let vecd = VectorDetector::default().detect(&full.vectors, &branch_pki);
        let brc = BranchCountDetector::default().detect(&full.vectors, &branch_pki);
        let r_name = profile.name.clone();
        let row = DetectorRow {
            name: r_name,
            sig_vs_vector: agreement(&sig, &vecd),
            branch_vs_vector: agreement(&brc, &vecd),
            sig_vs_branch: agreement(&sig, &brc),
        };
        println!(
            "  {:8} sig~vec {:.0}%   branch~vec {:.0}%   sig~branch {:.0}%",
            row.name,
            row.sig_vs_vector * 100.0,
            row.branch_vs_vector * 100.0,
            row.sig_vs_branch * 100.0
        );
        all_bv.push(row.branch_vs_vector);
        rows.push(row);
    }
    println!(
        "  mean branch-count vs vector agreement: {:.0}% (paper's cited figure: 83%)",
        all_bv.iter().sum::<f64>() / all_bv.len() as f64 * 100.0
    );
    export_json("ext_detectors", &rows);
}

// ---------------------------------------------------------- ext-predictors

#[derive(Serialize)]
struct PredictorRow {
    benchmark: String,
    quadrant: String,
    predictor: String,
    mean_relative_error_pct: f64,
    explained_variance: f64,
}

/// Related work \[12\] (Duesterwald et al.): online table-based history
/// predictors of interval CPI, per quadrant representative.
fn ext_predictors(cfg: &AnalysisRequest) {
    use fuzzyphase::sampling::{
        score_predictor, ExponentialAverage, LastValue, OnlinePredictor, TablePredictor,
    };
    println!("== ext-predictors (ref 12): online CPI prediction per quadrant ==");
    let mut rows = Vec::new();
    for spec in [
        BenchmarkSpec::odb_c(),
        BenchmarkSpec::spec("wupwise"),
        BenchmarkSpec::odb_h(18),
        BenchmarkSpec::spec("mcf"),
    ] {
        let r = cfg.run(&spec);
        let cpis = r.profile.interval_cpis();
        let lo = cpis.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = cpis.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-9;
        let mut predictors: Vec<Box<dyn OnlinePredictor>> = vec![
            Box::new(LastValue::new()),
            Box::new(ExponentialAverage::new(0.2)),
            Box::new(TablePredictor::new(3, 8, lo, hi)),
        ];
        println!("  {} ({})", r.name, r.quadrant);
        for p in predictors.iter_mut() {
            let s = score_predictor(p.as_mut(), &cpis);
            println!(
                "    {:10} mean |err| {:>5.2}%   explained {:>3.0}%",
                s.predictor,
                s.mean_relative_error * 100.0,
                s.explained_variance * 100.0
            );
            rows.push(PredictorRow {
                benchmark: r.name.clone(),
                quadrant: r.quadrant.to_string(),
                predictor: s.predictor,
                mean_relative_error_pct: s.mean_relative_error * 100.0,
                explained_variance: s.explained_variance,
            });
        }
    }
    println!(
        "  (history predicts strongly-phased CPI; random-data workloads defeat every predictor)"
    );
    export_json("ext_predictors", &rows);
}

// ---------------------------------------------------------------- ext-smp

#[derive(Serialize)]
struct SmpRow {
    monitored: String,
    co_runners: usize,
    mean_cpi: f64,
    cpi_variance: f64,
    exe_share: f64,
}

/// §9 system-level extension: the monitored workload's CPI as a function
/// of how many memory-hungry neighbours share the front-side bus.
fn ext_smp(cfg: &AnalysisRequest) {
    use fuzzyphase::arch::BusConfig;
    use fuzzyphase::profiler::SmpProfileSession;
    use fuzzyphase::workload::Workload;

    println!("== ext-smp (§9): shared-bus contention on the 4-way SMP ==");
    let mut rows = Vec::new();
    for monitored in ["swim", "mcf", "gzip"] {
        for co in [0usize, 1, 3] {
            let seq = fuzzyphase::stats::SeedSequence::new(cfg.seed());
            let mut ws: Vec<Box<dyn Workload>> = Vec::new();
            ws.push(Box::new(fuzzyphase::workload::spec::spec_workload(
                monitored,
                seq.seed_for(monitored),
            )));
            for i in 0..co {
                // swim neighbours: the heaviest bus traffic in the suite.
                ws.push(Box::new(fuzzyphase::workload::spec::spec_workload(
                    "swim",
                    seq.seed_for_index(1000 + i as u64),
                )));
            }
            let mut pcfg = cfg.profile().clone();
            pcfg.num_intervals = pcfg.num_intervals.min(80);
            let data = SmpProfileSession::run(&mut ws, &pcfg, BusConfig::default());
            let b = data.mean_breakdown();
            println!(
                "  {:6} + {co} co-runner(s): CPI {:.3}  var {:.4}  EXE {:.0}%",
                monitored,
                data.mean_cpi(),
                data.cpi_variance(),
                b.exe_fraction() * 100.0
            );
            rows.push(SmpRow {
                monitored: monitored.to_string(),
                co_runners: co,
                mean_cpi: data.mean_cpi(),
                cpi_variance: data.cpi_variance(),
                exe_share: b.exe_fraction(),
            });
        }
    }
    println!("  (memory-bound workloads inflate with neighbours; compute-bound gzip barely moves)");
    export_json("ext_smp", &rows);
}

// ------------------------------------------------------------ ext-metrics

#[derive(Serialize)]
struct MetricRow {
    benchmark: String,
    metric: String,
    variance: f64,
    re_min: f64,
    explained: f64,
}

/// §9's closing thread: "CPI is just one of the performance metrics" —
/// the same regression-tree machinery bounds the predictability of any
/// per-interval metric. Here: L3 MPKI and branch-mispredict PKI.
fn ext_metrics(cfg: &AnalysisRequest) {
    println!("== ext-metrics (§9): predicting other metrics from EIPVs ==");
    let mut rows = Vec::new();
    for spec in [
        BenchmarkSpec::spec("mcf"),
        BenchmarkSpec::spec("gcc"),
        BenchmarkSpec::odb_h(13),
        BenchmarkSpec::odb_h(18),
        BenchmarkSpec::odb_c(),
    ] {
        let r = cfg.run(&spec);
        let eipvs = r.profile.eipvs();
        let metrics: [(&str, Vec<f64>); 3] = [
            ("cpi", r.profile.interval_cpis()),
            (
                "l3_mpki",
                r.profile.intervals.iter().map(|i| i.l3_mpki).collect(),
            ),
            (
                "mispredict_pki",
                r.profile
                    .intervals
                    .iter()
                    .map(|i| i.mispredict_pki)
                    .collect(),
            ),
        ];
        println!("  {}", r.name);
        for (name, series) in metrics {
            let rep = fuzzyphase::regtree::analyze(&eipvs.vectors, &series, cfg.analysis());
            println!(
                "    {:15} var={:>9.4} RE_min={:.3} explains {:>3.0}%",
                name,
                rep.cpi_variance,
                rep.re_min,
                rep.explained_variance * 100.0
            );
            rows.push(MetricRow {
                benchmark: r.name.clone(),
                metric: name.to_string(),
                variance: rep.cpi_variance,
                re_min: rep.re_min,
                explained: rep.explained_variance,
            });
        }
    }
    println!("  (metrics inherit the workload's quadrant: what predicts CPI predicts MPKI, and vice versa)");
    export_json("ext_metrics", &rows);
}

// -------------------------------------------------------------- ext-early

#[derive(Serialize)]
struct EarlyRow {
    benchmark: String,
    technique: String,
    relative_error_pct: f64,
    fast_forward_intervals: usize,
}

/// §8's Perelman discussion: early simulation points trade a little error
/// for much less fast-forwarding.
fn ext_early(cfg: &AnalysisRequest) {
    use fuzzyphase::sampling::EarlyPhaseSampling;
    println!("== ext-early (§8): early simulation points vs best representatives ==");
    let mut rows = Vec::new();
    for spec in [
        BenchmarkSpec::spec("mcf"),
        BenchmarkSpec::spec("art"),
        BenchmarkSpec::odb_h(13),
    ] {
        let r = cfg.run(&spec);
        let eipvs = r.profile.eipvs();
        let techniques: Vec<Box<dyn Technique>> = vec![
            Box::new(PhaseSampling::new(10)),
            Box::new(EarlyPhaseSampling::new(10, 1.5)),
            Box::new(EarlyPhaseSampling::new(10, 3.0)),
        ];
        println!("  {} ({} intervals total)", r.name, eipvs.vectors.len());
        for t in &techniques {
            let e = evaluate_technique(t.as_ref(), &eipvs.vectors, &eipvs.cpis, cfg.seed());
            let est = t.estimate(&eipvs.vectors, &eipvs.cpis, cfg.seed());
            let ff = est.intervals.iter().max().copied().unwrap_or(0);
            let label = t.name().to_string();
            println!(
                "    {:12} error {:>5.2}%  fast-forward to interval {:>3}",
                label,
                e.relative_error * 100.0,
                ff
            );
            rows.push(EarlyRow {
                benchmark: r.name.clone(),
                technique: label,
                relative_error_pct: e.relative_error * 100.0,
                fast_forward_intervals: ff,
            });
        }
    }
    println!("  (slack trades representative quality for reachability)");
    export_json("ext_early", &rows);
}
