//! Stage-level wall-time benchmark for the regression-tree pipeline,
//! emitting `BENCH_regtree.json` for CI and regression tracking.
//!
//! ```text
//! cargo run --release -p fuzzyphase-bench --bin bench_regtree -- [out.json]
//! ```
//!
//! Times, on an EIPV-shaped dataset of ≥ 200 intervals:
//!
//! - `fit_rescan` — tree build with per-node re-gather + re-sort (the
//!   pre-cache baseline),
//! - `fit_scalar` — scalar oracle build: per-fit gather + global sort,
//!   presorted split-entry cache partitioned per node,
//! - `fit_columnar` — cold columnar build: bucket-and-sort the columnar
//!   layout, then the batch fit kernels,
//! - `fit_cached` — `Fitter::full` steady state: the dataset's
//!   memoized columnar primary storage feeds the batch kernels directly,
//! - `fit_incremental` — the streamed-refit steady state: a
//!   phase-structured session bootstrapped to half length, the rest fed
//!   to `Fitter::incremental` in frame-batch deltas, one refit per
//!   batch (the daemon's cadenced-refit path, DESIGN.md D15),
//! - `fit_stream_scratch` — the same refit points served by a scratch
//!   `Fitter::full` of each prefix (what the daemon did before D15),
//! - `sse_scalar` / `sse_batch` — fold-partial SSE accumulation over the
//!   full dataset, per-`k` scalar walk vs the batch kernel,
//! - `cv_baseline` — 10-fold × k=50 cross-validation as the seed
//!   implemented it: serial folds, re-sorting split search (the recorded
//!   serial baseline),
//! - `cv_serial` — current cross-validation on one thread (batch
//!   kernels, serial folds),
//! - `cv_parallel` — the same folds fanned across a worker pool,
//! - `diff_fit` — the fuzzydiff discriminant fit over two EIPV sides
//!   (union build + indicator-target tree through the shared columnar
//!   kernel + report rendering).
//!
//! Every optimized stage is checked against its baseline for exact
//! equality before timings are reported: the cached and columnar builds
//! must produce the identical tree, the batch SSE partials must be
//! bit-identical to the scalar walk, and the parallel curve must be
//! bit-identical to the serial one.

use fuzzyphase_diff::{diff, DiffOptions};
use fuzzyphase_profiler::{EipvData, Sample};
use fuzzyphase_regtree::{
    eval_sse_batch, eval_sse_scalar, ColumnarDataset, CrossValidation, Dataset, FitDelta, Fitter,
    TreeBuilder,
};
use fuzzyphase_stats::{seeded_rng, KFold, SparseVec};
use rand::Rng;
use serde::Serialize;
use std::time::Instant;

/// Wall time of one pipeline stage, median over `reps` repetitions.
#[derive(Serialize)]
struct Stage {
    name: String,
    reps: usize,
    median_ms: f64,
    min_ms: f64,
}

#[derive(Serialize)]
struct Report {
    intervals: usize,
    features: u32,
    nnz_per_row: usize,
    /// Length of the phase-structured session the streamed-refit stages
    /// (`fit_incremental` / `fit_stream_scratch`) run over; the first
    /// half is bootstrapped untimed, the second half streams in
    /// frame-batch deltas.
    stream_intervals: usize,
    folds: usize,
    k_max: usize,
    /// `std::thread::available_parallelism()` on the machine that produced
    /// this report — context for comparing CV speedups across runners
    /// (`None` when the platform cannot report it).
    available_parallelism: Option<usize>,
    cv_workers: usize,
    stages: Vec<Stage>,
    fit_speedup: f64,
    /// Current CV (cached search, worker pool) vs the recorded serial
    /// baseline (`cv_baseline`): the headline improvement.
    cv_speedup_vs_baseline: f64,
    /// Fold-parallel CV vs current serial CV: the pool's contribution
    /// alone (≈ 1.0 on a single-core machine).
    cv_speedup_parallel: f64,
    /// Incremental streamed refits vs scratch refits of the same
    /// prefixes: the daemon's steady-state refit advantage.
    incremental_refit_speedup: f64,
    cached_tree_identical: bool,
    /// Batch columnar fit produced the same tree as the scalar oracle.
    columnar_tree_identical: bool,
    /// The final incrementally-maintained tree equals a scratch fit of
    /// the whole dataset.
    incremental_tree_identical: bool,
    /// Batch SSE fold partials are bit-identical to the scalar walk.
    sse_batch_bit_identical: bool,
    parallel_curve_bit_identical: bool,
    /// Two fuzzydiff fits over the same sides rendered identical bytes.
    diff_report_byte_stable: bool,
}

/// The seed's cross-validation loop, reconstructed as the recorded
/// baseline: serial folds, per-node re-sorting split search.
fn cv_baseline(ds: &Dataset, cv: &CrossValidation) -> Vec<f64> {
    let kf = KFold::new(ds.len(), cv.folds, cv.seed);
    let builder = TreeBuilder::new()
        .max_leaves(cv.k_max)
        .min_leaf(cv.min_leaf);
    let mut sum_sq_err = vec![0.0f64; cv.k_max];
    for (train, test) in kf.splits() {
        let tree = builder.fit_rescan(&ds.subset(&train));
        for &t in test {
            let y = ds.target(t);
            let path = tree.path_means(ds.row(t));
            let mut pi = 0;
            for k in 1..=cv.k_max {
                while pi + 1 < path.len() && (path[pi + 1].0 as usize) < k {
                    pi += 1;
                }
                let err = y - path[pi].1;
                sum_sq_err[k - 1] += err * err;
            }
        }
    }
    sum_sq_err
}

/// A realistic EIPV-shaped dataset (mirrors the criterion bench).
fn eipv_dataset(n: usize, features: u32, nnz: usize, seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed);
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let phase = (i / 20) % 3;
        let base = phase as u32 * (features / 3);
        let pairs: Vec<(u32, f64)> = (0..nnz)
            .map(|_| {
                (
                    base + rng.gen_range(0..features / 3),
                    rng.gen_range(1.0..5.0),
                )
            })
            .collect();
        rows.push(SparseVec::from_pairs(pairs));
        ys.push(1.0 + phase as f64 * 0.8 + rng.gen_range(-0.05..0.05));
    }
    Dataset::new(rows, ys)
}

/// A phase-structured EIPV trajectory for the streamed-refit stages:
/// `phases` recurring program phases with Zipf-skewed unequal durations,
/// each phase dominated by its own fixed set of hot EIPs (the hottest
/// consistently hottest, as the 90/10 rule makes real EIPVs look) over a
/// uniform cold tail, and a per-phase CPI level. A regression tree's
/// leaves then capture *real* phases — the paper's use case — so the
/// split structure is stable under streaming instead of churning on
/// per-interval noise the way a uniform-random dataset makes it.
fn phased_eipv_dataset(n: usize, features: u32, nnz: usize, seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed);
    let phases = 12usize;
    let hot_per_phase = 24usize;
    let band = features / phases as u32;
    let durations: Vec<usize> = (0..phases).map(|p| 2 + 24 / (p + 1)).collect();
    let cycle: usize = durations.iter().sum();
    let phase_of = |i: usize| -> usize {
        let mut t = i % cycle;
        for (p, &d) in durations.iter().enumerate() {
            if t < d {
                return p;
            }
            t -= d;
        }
        phases - 1
    };
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let phase = phase_of(i);
        let base = phase as u32 * band;
        let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(nnz);
        for h in 0..hot_per_phase {
            pairs.push((
                base + h as u32 * 7,
                120.0 / (h + 1) as f64 + rng.gen_range(0.0..4.0),
            ));
        }
        for _ in hot_per_phase..nnz {
            pairs.push((base + rng.gen_range(0..band), rng.gen_range(1.0..5.0)));
        }
        rows.push(SparseVec::from_pairs(pairs));
        ys.push(1.0 + phase as f64 * 0.3 + rng.gen_range(-0.025..0.025));
    }
    Dataset::new(rows, ys)
}

/// One synthetic EIPV side for the `diff_fit` stage: `vectors` EIPV
/// rows over a code region starting at `base`, CPIs in `[cpi_lo,
/// cpi_hi)`.
fn eipv_side(vectors: usize, base: u64, cpi_lo: f64, cpi_hi: f64, seed: u64) -> EipvData {
    let spv = 100;
    let mut rng = seeded_rng(seed);
    let samples: Vec<Sample> = (0..vectors * spv)
        .map(|_| Sample {
            eip: base + rng.gen_range(0..400u64) * 8,
            thread: 0,
            is_os: false,
            cpi: rng.gen_range(cpi_lo..cpi_hi),
        })
        .collect();
    EipvData::from_samples(&samples, spv)
}

/// Runs `f` `reps` times, returning (median ms, min ms).
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let out = f();
            let ms = t.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(out);
            ms
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    (samples[samples.len() / 2], samples[0])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_regtree.json".to_string());

    let (intervals, features, nnz) = (240, 6_000u32, 80);
    let ds = eipv_dataset(intervals, features, nnz, 1);
    let reps = 7;

    let builder = TreeBuilder::new();
    let fitter = Fitter::new();
    let (fit_rescan_med, fit_rescan_min) = time_ms(reps, || builder.fit_rescan(&ds));
    let (fit_scalar_med, fit_scalar_min) = time_ms(reps, || builder.fit_scalar(&ds));
    let (fit_columnar_med, fit_columnar_min) = time_ms(reps, || {
        fitter.full_on_columns(&ColumnarDataset::from_dataset(&ds))
    });
    // Warm the dataset's memoized columnar storage so `fit_cached`
    // times the steady state `Fitter::full` actually runs at.
    let warm_tree = fitter.full(&ds);
    let (fit_cached_med, fit_cached_min) = time_ms(reps, || fitter.full(&ds));
    let cached_tree_identical = fitter.full(&ds) == builder.fit_rescan(&ds);
    let columnar_tree_identical = fitter.full_on_columns(ds.columnar()) == builder.fit_scalar(&ds);

    // The streamed-refit steady state: a phase-structured session of
    // `stream_intervals` frames, the first half absorbed in one
    // bootstrap gulp, the second half arriving as frame-batch deltas
    // with one cadenced refit per batch — incremental delta maintenance
    // vs a scratch `Fitter::full` of each of the same prefixes (what
    // the daemon did before D15). Cloning the bootstrapped state keeps
    // the one-time bootstrap out of the timed region, so the stage
    // measures exactly the daemon's recurring per-refit cost.
    let stream_intervals = 1920usize;
    let delta_batch = 10;
    let sds = phased_eipv_dataset(stream_intervals, features, nnz, 2);
    let half = stream_intervals / 2;
    let stream_fitter = Fitter::new().max_leaves(16).min_leaf(8);
    let boot = {
        let mut state = stream_fitter.begin();
        stream_fitter.incremental(
            &mut state,
            &FitDelta::new(
                (0..half).map(|i| sds.row(i).clone()).collect(),
                (0..half).map(|i| sds.target(i)).collect(),
            ),
        );
        state
    };
    let batches: Vec<(Vec<SparseVec>, Vec<f64>)> = (half..stream_intervals)
        .step_by(delta_batch)
        .map(|start| {
            let end = (start + delta_batch).min(stream_intervals);
            (
                (start..end).map(|i| sds.row(i).clone()).collect(),
                (start..end).map(|i| sds.target(i)).collect(),
            )
        })
        .collect();
    let stream_incremental = || {
        let mut state = boot.clone();
        let mut last = None;
        for (rows, ys) in &batches {
            let delta = FitDelta::new(rows.clone(), ys.clone());
            last = Some(stream_fitter.incremental(&mut state, &delta));
        }
        last.expect("at least one batch")
    };
    let stream_reps = 5;
    let (fit_incremental_med, fit_incremental_min) = time_ms(stream_reps, stream_incremental);
    let (fit_stream_scratch_med, fit_stream_scratch_min) = time_ms(stream_reps, || {
        let mut last = None;
        for end in (half..stream_intervals).step_by(delta_batch) {
            let end = (end + delta_batch).min(stream_intervals);
            let prefix = Dataset::new(
                (0..end).map(|i| sds.row(i).clone()).collect(),
                (0..end).map(|i| sds.target(i)).collect(),
            );
            last = Some(stream_fitter.full(&prefix));
        }
        last.expect("at least one prefix")
    });
    let incremental_tree_identical = stream_incremental() == stream_fitter.full(&sds);

    let k_max_eval = CrossValidation::default().k_max;
    let all_rows: Vec<usize> = (0..ds.len()).collect();
    let (sse_scalar_med, sse_scalar_min) = time_ms(reps, || {
        eval_sse_scalar(&warm_tree, &ds, &all_rows, k_max_eval)
    });
    let (sse_batch_med, sse_batch_min) = time_ms(reps, || {
        eval_sse_batch(&warm_tree, &ds, &all_rows, k_max_eval)
    });
    let sse_batch_bit_identical = {
        let a = eval_sse_batch(&warm_tree, &ds, &all_rows, k_max_eval);
        let b = eval_sse_scalar(&warm_tree, &ds, &all_rows, k_max_eval);
        a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits())
    };

    let serial_cv = CrossValidation {
        seed: 7,
        workers: 1,
        ..Default::default()
    };
    let available_parallelism = std::thread::available_parallelism().ok().map(|n| n.get());
    let workers = available_parallelism.unwrap_or(4).min(serial_cv.folds);
    let parallel_cv = CrossValidation {
        workers,
        ..serial_cv
    };
    let (cv_base_med, cv_base_min) = time_ms(reps, || cv_baseline(&ds, &serial_cv));
    let (cv_serial_med, cv_serial_min) = time_ms(reps, || serial_cv.run(&ds));
    let (cv_parallel_med, cv_parallel_min) = time_ms(reps, || parallel_cv.run(&ds));
    let (a, b) = (serial_cv.run(&ds), parallel_cv.run(&ds));
    let parallel_curve_bit_identical = a == b
        && a.re
            .iter()
            .zip(&b.re)
            .all(|(x, y)| x.to_bits() == y.to_bits());

    // fuzzydiff discriminant fit: two 120-vector sides with overlapping
    // code regions — half the candidate's intervals dive into a slower
    // region, the shape `Diff` requests see in practice.
    let side_a = eipv_side(120, 0x40_0000, 0.9, 1.3, 11);
    let side_b = {
        let fast = eipv_side(60, 0x40_0000, 1.0, 1.4, 12);
        let slow = eipv_side(60, 0x41_0000, 2.0, 2.8, 13);
        let mut b = fast;
        b.absorb(&slow);
        b
    };
    let opts = DiffOptions::default();
    let (diff_fit_med, diff_fit_min) = time_ms(reps, || {
        diff(&side_a, &side_b, "baseline", "candidate", &opts).expect("diff fits")
    });
    let diff_report_byte_stable = {
        let a = diff(&side_a, &side_b, "baseline", "candidate", &opts).expect("diff fits");
        let b = diff(&side_a, &side_b, "baseline", "candidate", &opts).expect("diff fits");
        a.to_json() == b.to_json()
    };

    let stage = |name: &str, med: f64, min: f64| Stage {
        name: name.to_string(),
        reps,
        median_ms: med,
        min_ms: min,
    };
    let stream_stage = |name: &str, med: f64, min: f64| Stage {
        name: name.to_string(),
        reps: stream_reps,
        median_ms: med,
        min_ms: min,
    };
    let report = Report {
        intervals,
        features,
        nnz_per_row: nnz,
        stream_intervals,
        folds: serial_cv.folds,
        k_max: serial_cv.k_max,
        available_parallelism,
        cv_workers: workers,
        stages: vec![
            stage("fit_rescan", fit_rescan_med, fit_rescan_min),
            stage("fit_scalar", fit_scalar_med, fit_scalar_min),
            stage("fit_columnar", fit_columnar_med, fit_columnar_min),
            stage("fit_cached", fit_cached_med, fit_cached_min),
            stream_stage("fit_incremental", fit_incremental_med, fit_incremental_min),
            stream_stage(
                "fit_stream_scratch",
                fit_stream_scratch_med,
                fit_stream_scratch_min,
            ),
            stage("sse_scalar", sse_scalar_med, sse_scalar_min),
            stage("sse_batch", sse_batch_med, sse_batch_min),
            stage("cv_baseline", cv_base_med, cv_base_min),
            stage("cv_serial", cv_serial_med, cv_serial_min),
            stage("cv_parallel", cv_parallel_med, cv_parallel_min),
            stage("diff_fit", diff_fit_med, diff_fit_min),
        ],
        fit_speedup: fit_rescan_med / fit_cached_med,
        cv_speedup_vs_baseline: cv_base_med / cv_parallel_med,
        cv_speedup_parallel: cv_serial_med / cv_parallel_med,
        incremental_refit_speedup: fit_stream_scratch_med / fit_incremental_med,
        cached_tree_identical,
        columnar_tree_identical,
        incremental_tree_identical,
        sse_batch_bit_identical,
        parallel_curve_bit_identical,
        diff_report_byte_stable,
    };

    assert!(
        report.cached_tree_identical,
        "split-entry cache changed the fitted tree"
    );
    assert!(
        report.parallel_curve_bit_identical,
        "parallel cross-validation changed the RE curve"
    );
    assert!(
        report.columnar_tree_identical,
        "columnar batch fit changed the fitted tree"
    );
    assert!(
        report.incremental_tree_identical,
        "incremental delta maintenance changed the fitted tree"
    );
    assert!(
        report.sse_batch_bit_identical,
        "batch SSE accumulation changed the fold partials"
    );
    assert!(
        report.diff_report_byte_stable,
        "fuzzydiff report bytes drifted between identical fits"
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write bench report");

    println!("dataset: {intervals} intervals x {features} features (~{nnz} nnz/row)");
    for s in &report.stages {
        println!(
            "{:<12} median {:8.2} ms   min {:8.2} ms   ({} reps)",
            s.name, s.median_ms, s.min_ms, s.reps
        );
    }
    println!(
        "fit speedup (cache):        {:.2}x  [tree identical: {}]",
        report.fit_speedup, report.cached_tree_identical
    );
    println!(
        "cv speedup vs baseline:     {:.2}x",
        report.cv_speedup_vs_baseline
    );
    println!(
        "incremental refit speedup:  {:.2}x  [tree identical: {}]",
        report.incremental_refit_speedup, report.incremental_tree_identical
    );
    println!(
        "cv speedup ({} fold workers): {:.2}x  [curve bit-identical: {}]",
        report.cv_workers, report.cv_speedup_parallel, report.parallel_curve_bit_identical
    );
    println!("wrote {out_path}");
}
