//! Experiment-harness support: terminal rendering and result export for
//! the `figures` binary that regenerates every table and figure in the
//! paper.

use std::fmt::Write as _;
use std::path::Path;

/// Renders a numeric series as a fixed-width ASCII sparkline (terminal
/// "figure").
pub fn sparkline(xs: &[f64], width: usize) -> String {
    if xs.is_empty() || width == 0 {
        return String::new();
    }
    let ds = fuzzyphase::stats::timeseries::downsample(xs, width);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in &ds {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let ramp: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let span = (hi - lo).max(1e-12);
    ds.iter()
        .map(|&x| {
            let t = ((x - lo) / span * (ramp.len() - 1) as f64).round() as usize;
            ramp[t.min(ramp.len() - 1)]
        })
        .collect()
}

/// Renders an RE-vs-k curve with axis labels.
pub fn re_curve_block(name: &str, re: &[f64]) -> String {
    let mut out = String::new();
    // fmt::Write to a String is infallible; the result is discarded.
    let _ = writeln!(out, "  {name:10} RE(k): {}", sparkline(re, 50));
    let picks = [1usize, 2, 3, 5, 9, 15, 20, 30, 40, 50];
    let vals: Vec<String> = picks
        .iter()
        .filter(|&&k| k <= re.len())
        .map(|&k| format!("k{k}={:.3}", re[k - 1]))
        .collect();
    let _ = writeln!(out, "  {:10}        {}", "", vals.join("  "));
    out
}

/// Writes a JSON value into `EXPERIMENTS-data/<name>.json` under the
/// workspace root (best effort; errors are reported, not fatal).
pub fn export_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("EXPERIMENTS-data");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_length_and_range() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 / 10.0).sin()).collect();
        let s = sparkline(&xs, 40);
        assert_eq!(s.chars().count(), 40);
        assert!(s.contains('█'));
        assert!(s.contains('▁'));
    }

    #[test]
    fn sparkline_flat_input() {
        let s = sparkline(&[1.0; 10], 10);
        assert_eq!(s.chars().count(), 10);
    }

    #[test]
    fn sparkline_empty() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
    }

    #[test]
    fn curve_block_mentions_k_values() {
        let re: Vec<f64> = (0..50).map(|i| 1.0 / (i + 1) as f64).collect();
        let block = re_curve_block("test", &re);
        assert!(block.contains("k1=1.000"));
        assert!(block.contains("k50=0.020"));
    }
}
