//! Fixed-width binned histograms.

use serde::{Deserialize, Serialize};

/// A histogram over a fixed range with equal-width bins.
///
/// Values below the range land in bin 0; values above land in the last bin
/// (saturating, so no sample is ever dropped — the same convention VTune's
/// histogram views use).
///
/// ```
/// use fuzzyphase_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// h.record(42.0); // clamps into the last bin
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_count(4), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `nbins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        let n = self.bins.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            ((frac * n as f64) as usize).min(n - 1)
        };
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Inclusive lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }

    /// All bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Fraction of observations in bin `i`; 0.0 if empty.
    pub fn bin_fraction(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bins[i] as f64 / self.count as f64
        }
    }

    /// Index of the most populated bin (first on ties).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            if c > self.bins[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_conserved() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..100 {
            h.record(i as f64 * 0.013 - 0.1);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.bins().iter().sum::<u64>(), 100);
    }

    #[test]
    fn clamping() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(5.0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(3), 1);
    }

    #[test]
    fn bin_edges() {
        let h = Histogram::new(0.0, 8.0, 4);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_lo(1), 2.0);
        assert_eq!(h.bin_lo(3), 6.0);
    }

    #[test]
    fn uniform_fill_is_flat() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..400 {
            h.record((i as f64 + 0.5) / 400.0);
        }
        for i in 0..4 {
            assert_eq!(h.bin_count(i), 100);
        }
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record(0.5);
        h.record(1.5);
        h.record(1.6);
        assert_eq!(h.mode_bin(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        Histogram::new(1.0, 1.0, 4);
    }
}
