//! Sampling distributions used by the synthetic workload models.
//!
//! `rand` 0.8 ships only uniform primitives in-tree; the heavier-tailed
//! distributions the workload generators need (Zipf for code popularity,
//! log-normal for service times, Pareto for working-set skew, alias tables
//! for arbitrary discrete mixes) are implemented here from scratch.

use rand::Rng;

/// Zipf distribution over `{0, 1, …, n-1}` with exponent `s`.
///
/// Sampling uses an inverted cumulative table (O(log n) per sample), which
/// is plenty fast for the table sizes the workload models use and is exact.
///
/// Code popularity is famously Zipf-like: a handful of hot basic blocks
/// dominate execution, with a long tail of cold code. The ODB-C model uses a
/// *low* exponent to reproduce the paper's near-uniform EIP spread, while the
/// SPEC models use higher exponents for loopy kernels.
///
/// ```
/// use fuzzyphase_stats::Zipf;
/// use rand::SeedableRng;
/// let z = Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = z.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s >= 0`.
    ///
    /// `s == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero ranks (never true by
    /// construction, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            0.0
        } else if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma`.
///
/// Sampling is via Box–Muller on the uniform source.
///
/// ```
/// use fuzzyphase_stats::LogNormal;
/// use rand::SeedableRng;
/// let d = LogNormal::new(0.0, 0.25);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// assert!(d.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or parameters are not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be >= 0");
        Self { mu, sigma }
    }

    /// Draws one sample (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Mean of the distribution: `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Draws a standard normal deviate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u == 0 which would send ln to -inf.
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let v: f64 = rng.gen();
    (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
}

/// Pareto (type I) distribution with scale `x_min > 0` and shape `alpha > 0`.
///
/// ```
/// use fuzzyphase_stats::Pareto;
/// use rand::SeedableRng;
/// let p = Pareto::new(1.0, 2.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// assert!(p.sample(&mut rng) >= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0, "x_min must be positive");
        assert!(alpha > 0.0, "alpha must be positive");
        Self { x_min, alpha }
    }

    /// Draws one sample (always >= `x_min`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = loop {
            let u: f64 = rng.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Exponential distribution with rate `lambda`.
///
/// Used for inter-arrival times (context switches, I/O waits, transaction
/// arrivals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        Self { lambda }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = loop {
            let u: f64 = rng.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -u.ln() / self.lambda
    }

    /// Mean (`1 / lambda`).
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Discrete distribution over arbitrary weights, cumulative-table backed.
///
/// O(log n) sampling; prefer [`Alias`] when millions of samples are drawn
/// from the same distribution.
///
/// ```
/// use fuzzyphase_stats::Discrete;
/// use rand::SeedableRng;
/// let d = Discrete::new(&[1.0, 0.0, 3.0]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let i = d.sample(&mut rng);
/// assert!(i == 0 || i == 2); // index 1 has zero weight
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cdf: Vec<f64>,
}

impl Discrete {
    /// Creates a discrete distribution from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be >= 0 and finite");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for c in &mut cdf {
            *c /= acc;
        }
        Self { cdf }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false by construction; for API completeness.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut idx = match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cdf.len() - 1);
        // Skip zero-weight outcomes that share a cdf value with their
        // predecessor.
        while idx > 0 && self.cdf[idx] == self.cdf[idx - 1] {
            idx -= 1;
        }
        idx
    }
}

/// Walker alias table for O(1) discrete sampling.
///
/// The workload generators draw billions of code-region indices; the alias
/// method makes each draw two uniforms and one table lookup.
///
/// ```
/// use fuzzyphase_stats::Alias;
/// use rand::SeedableRng;
/// let a = Alias::new(&[0.5, 0.25, 0.25]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// assert!(a.sample(&mut rng) < 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Alias {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl Alias {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Discrete::new`], or if more
    /// than `u32::MAX` outcomes are supplied.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(weights.len() <= u32::MAX as usize, "too many outcomes");
        let n = weights.len();
        let total: f64 = weights
            .iter()
            .inspect(|&&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be >= 0 and finite");
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residuals are 1.0 up to float error.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always false by construction; for API completeness.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index in O(1).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn empirical(dist: impl Fn(&mut rand::rngs::StdRng) -> usize, n: usize, k: usize) -> Vec<f64> {
        let mut rng = seeded_rng(42);
        let mut counts = vec![0usize; k];
        for _ in 0..n {
            counts[dist(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn zipf_rank_order() {
        let z = Zipf::new(8, 1.2);
        let freq = empirical(|r| z.sample(r), 40_000, 8);
        // Heavier ranks come first.
        assert!(freq[0] > freq[1]);
        assert!(freq[1] > freq[3]);
        // PMF sums to 1.
        let total: f64 = (0..8).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(5, 0.8);
        let freq = empirical(|r| z.sample(r), 100_000, 5);
        for (k, &f) in freq.iter().enumerate() {
            assert!((f - z.pmf(k)).abs() < 0.01, "rank {k}");
        }
    }

    #[test]
    fn lognormal_mean() {
        let d = LogNormal::new(0.0, 0.5);
        let mut rng = seeded_rng(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - d.mean()).abs() < 0.02,
            "got {mean}, want {}",
            d.mean()
        );
    }

    #[test]
    fn pareto_lower_bound() {
        let p = Pareto::new(2.0, 1.5);
        let mut rng = seeded_rng(8);
        for _ in 0..1000 {
            assert!(p.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let e = Exponential::new(4.0);
        let mut rng = seeded_rng(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01);
    }

    #[test]
    fn discrete_zero_weight_never_drawn() {
        let d = Discrete::new(&[1.0, 0.0, 1.0]);
        let mut rng = seeded_rng(10);
        for _ in 0..5000 {
            assert_ne!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn discrete_single_outcome() {
        let d = Discrete::new(&[7.0]);
        let mut rng = seeded_rng(11);
        assert_eq!(d.sample(&mut rng), 0);
    }

    #[test]
    fn alias_matches_weights() {
        let weights = [4.0, 1.0, 3.0, 2.0];
        let a = Alias::new(&weights);
        let freq = empirical(|r| a.sample(r), 200_000, 4);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            assert!((freq[i] - w / total).abs() < 0.01, "outcome {i}");
        }
    }

    #[test]
    fn alias_zero_weight_never_drawn() {
        let a = Alias::new(&[1.0, 0.0, 2.0]);
        let mut rng = seeded_rng(12);
        for _ in 0..5000 {
            assert_ne!(a.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn discrete_rejects_all_zero() {
        Discrete::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = crate::mean(&xs);
        let var = crate::variance(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}

/// Probabilistic rounding: returns `floor(x)` or `ceil(x)` such that the
/// expectation equals `x`. Used to convert fractional expected event counts
/// into integer per-quantum counts without bias.
///
/// # Panics
///
/// Panics if `x` is negative or not finite.
pub fn prob_round<R: Rng + ?Sized>(rng: &mut R, x: f64) -> u64 {
    assert!(x >= 0.0 && x.is_finite(), "prob_round needs finite x >= 0");
    let base = x.floor();
    let frac = x - base;
    base as u64 + u64::from(rng.gen::<f64>() < frac)
}

/// Draws a Poisson-distributed count with mean `lambda` (Knuth's method
/// for small lambda, normal approximation above 64).
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "poisson needs finite lambda >= 0"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        let x = lambda + lambda.sqrt() * standard_normal(rng);
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn prob_round_unbiased() {
        let mut rng = seeded_rng(20);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| prob_round(&mut rng, 2.3)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn prob_round_integer_is_exact() {
        let mut rng = seeded_rng(21);
        for _ in 0..100 {
            assert_eq!(prob_round(&mut rng, 3.0), 3);
            assert_eq!(prob_round(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = seeded_rng(22);
        for lambda in [0.5, 4.0, 30.0, 120.0] {
            let n = 50_000;
            let xs: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
            let mean = crate::mean(&xs);
            let var = crate::variance(&xs);
            assert!(
                (mean - lambda).abs() < 0.05 * lambda + 0.05,
                "mean {mean} for {lambda}"
            );
            assert!(
                (var - lambda).abs() < 0.1 * lambda + 0.1,
                "var {var} for {lambda}"
            );
        }
    }

    #[test]
    fn poisson_zero() {
        let mut rng = seeded_rng(23);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
