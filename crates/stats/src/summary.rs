//! One-shot descriptive statistics.

use crate::welford::Welford;
use serde::{Deserialize, Serialize};

/// Descriptive statistics of a sample.
///
/// ```
/// use fuzzyphase_stats::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.count, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation (`0.0` if empty).
    pub min: f64,
    /// Largest observation (`0.0` if empty).
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (linear-interpolated).
    pub median: f64,
    /// 5th percentile.
    pub p05: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes the summary of a slice.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Summary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                variance: 0.0,
                std_dev: 0.0,
                median: 0.0,
                p05: 0.0,
                p95: 0.0,
            };
        }
        let w: Welford = xs.iter().copied().collect();
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            count: xs.len(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: w.mean(),
            variance: w.variance_population(),
            std_dev: w.std_population(),
            median: percentile_sorted(&sorted, 0.5),
            p05: percentile_sorted(&sorted, 0.05),
            p95: percentile_sorted(&sorted, 0.95),
        }
    }

    /// Coefficient of variation (`std_dev / mean`); 0.0 when mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Linear-interpolated percentile of an already-sorted slice.
///
/// `q` is in `[0, 1]`. Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile q out of range: {q}");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Sorts a copy of the input and takes a percentile.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn median_even_count_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn percentile_bounds() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn unsorted_input_handled() {
        let s = Summary::of(&[9.0, 1.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn cv_matches_definition() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.cv() - 2.0 / 5.0).abs() < 1e-12);
    }
}
