//! Small time-series helpers used for the EIP/CPI "spread" figures and for
//! quantifying phase-like periodicity in CPI traces.

/// Lag-`k` autocorrelation of a series.
///
/// Returns 0.0 when the series is too short or has zero variance.
///
/// ```
/// // A period-2 alternating series has strong negative lag-1 autocorrelation.
/// let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let r = fuzzyphase_stats::timeseries::autocorrelation(&xs, 1);
/// assert!(r < -0.9);
/// ```
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let n = xs.len();
    let mean = crate::mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    num / denom
}

/// Centered moving average with window `w` (clamped at the edges).
///
/// Returns the input unchanged when `w <= 1`.
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    if w <= 1 || xs.is_empty() {
        return xs.to_vec();
    }
    let half = w / 2;
    (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(xs.len());
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Downsamples a series to at most `max_points` by averaging consecutive
/// chunks. Used to print figure series at terminal-friendly resolution.
pub fn downsample(xs: &[f64], max_points: usize) -> Vec<f64> {
    if max_points == 0 || xs.is_empty() || xs.len() <= max_points {
        return xs.to_vec();
    }
    let chunk = xs.len().div_ceil(max_points);
    xs.chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Number of "runs" — maximal segments where the series stays on one side
/// of its mean. Few long runs indicate coarse phase behaviour; many short
/// runs indicate noise.
pub fn mean_crossing_runs(xs: &[f64]) -> usize {
    if xs.is_empty() {
        return 0;
    }
    let mean = crate::mean(xs);
    let mut runs = 1;
    let mut above = xs[0] >= mean;
    for &x in &xs[1..] {
        let now = x >= mean;
        if now != above {
            runs += 1;
            above = now;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autocorr_constant_is_zero() {
        let xs = [2.0; 10];
        assert_eq!(autocorrelation(&xs, 1), 0.0);
    }

    #[test]
    fn autocorr_linear_trend_positive() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(autocorrelation(&xs, 1) > 0.9);
    }

    #[test]
    fn autocorr_short_series() {
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert_eq!(autocorrelation(&[], 0), 0.0);
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let sm = moving_average(&xs, 3);
        assert_eq!(sm.len(), xs.len());
        // Interior points average their neighborhood.
        assert!((sm[2] - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(moving_average(&xs, 1), xs.to_vec());
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let ds = downsample(&xs, 100);
        assert!(ds.len() <= 100);
        let m1 = crate::mean(&xs);
        let m2 = crate::mean(&ds);
        assert!((m1 - m2).abs() < 0.5);
    }

    #[test]
    fn downsample_short_input_unchanged() {
        let xs = [1.0, 2.0];
        assert_eq!(downsample(&xs, 10), xs.to_vec());
    }

    #[test]
    fn runs_alternating() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(mean_crossing_runs(&xs), 4);
    }

    #[test]
    fn runs_two_phases() {
        let xs = [0.0, 0.0, 0.0, 10.0, 10.0, 10.0];
        assert_eq!(mean_crossing_runs(&xs), 2);
    }

    #[test]
    fn runs_empty() {
        assert_eq!(mean_crossing_runs(&[]), 0);
    }
}
