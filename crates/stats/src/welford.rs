//! Streaming mean/variance accumulators.
//!
//! The paper's regression-tree split search (§4.1) evaluates the CPI
//! variance of thousands of candidate partitions; numerically stable
//! streaming accumulators keep that both fast and accurate.

/// Welford's online algorithm for mean and variance.
///
/// ```
/// use fuzzyphase_stats::Welford;
/// let mut w = Welford::new();
/// w.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.variance_population(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); 0.0 for n < 1.
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Sample variance (divides by `n - 1`); 0.0 for n < 2.
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Sum of squared deviations from the mean (`M2` in Welford's terms).
    ///
    /// The regression-tree builder works directly with this quantity: the
    /// weighted sum of chamber variances in §4.1 is just the sum of the
    /// chambers' `sum_sq_dev` divided by the total count.
    pub fn sum_sq_dev(&self) -> f64 {
        self.m2.max(0.0)
    }

    /// The raw accumulator state `(count, mean, m2)`.
    ///
    /// Together with [`from_state`](Self::from_state) this gives exact
    /// (bit-level) checkpoint/restore: the serve daemon's spool
    /// snapshots persist streaming CPI statistics this way, so a
    /// recovered session continues from f64 state identical to an
    /// uninterrupted run.
    pub fn state(&self) -> (u64, f64, f64) {
        (self.count, self.mean, self.m2)
    }

    /// Rebuilds an accumulator from [`state`](Self::state) output,
    /// bit-exactly.
    pub fn from_state(count: u64, mean: f64, m2: f64) -> Self {
        Self { count, mean, m2 }
    }

    /// Removes one observation previously added with [`push`](Self::push).
    ///
    /// This makes incremental split-point scans O(1) per step: moving a
    /// tuple from the right partition to the left is one `unpush` and one
    /// `push`.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    #[inline]
    pub fn unpush(&mut self, x: f64) {
        assert!(self.count > 0, "unpush from empty Welford accumulator");
        if self.count == 1 {
            *self = Self::default();
            return;
        }
        let n = self.count as f64;
        let mean_prev = (n * self.mean - x) / (n - 1.0);
        self.m2 -= (x - self.mean) * (x - mean_prev);
        if self.m2 < 0.0 {
            self.m2 = 0.0;
        }
        self.mean = mean_prev;
        self.count -= 1;
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

/// Weighted streaming mean/variance.
///
/// Used where observations carry instruction-count weights (e.g. per-thread
/// CPI aggregation when threads run different numbers of instructions).
///
/// ```
/// use fuzzyphase_stats::WeightedWelford;
/// let mut w = WeightedWelford::new();
/// w.push(1.0, 1.0);
/// w.push(3.0, 3.0);
/// assert_eq!(w.mean(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeightedWelford {
    weight: f64,
    mean: f64,
    m2: f64,
}

impl WeightedWelford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation `x` with positive weight `w`.
    ///
    /// Observations with non-positive weight are ignored.
    #[inline]
    pub fn push(&mut self, x: f64, w: f64) {
        if w <= 0.0 {
            return;
        }
        self.weight += w;
        let delta = x - self.mean;
        self.mean += (w / self.weight) * delta;
        self.m2 += w * delta * (x - self.mean);
    }

    /// Total weight accumulated.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Weighted mean; 0.0 if no weight has been accumulated.
    pub fn mean(&self) -> f64 {
        if self.weight == 0.0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Weighted population variance.
    pub fn variance(&self) -> f64 {
        if self.weight == 0.0 {
            0.0
        } else {
            (self.m2 / self.weight).max(0.0)
        }
    }
}

/// A Welford accumulator that can be merged with another.
///
/// Merging uses Chan et al.'s parallel update, which lets the experiment
/// harness compute suite-wide statistics from per-benchmark accumulators
/// produced on worker threads.
///
/// ```
/// use fuzzyphase_stats::MergeableWelford;
/// let mut a = MergeableWelford::new();
/// a.extend([1.0, 2.0]);
/// let mut b = MergeableWelford::new();
/// b.extend([3.0, 4.0]);
/// a.merge(&b);
/// assert_eq!(a.mean(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MergeableWelford {
    inner: Welford,
}

impl MergeableWelford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.inner.push(x);
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean of all observations.
    pub fn mean(&self) -> f64 {
        self.inner.mean()
    }

    /// Population variance of all observations.
    pub fn variance_population(&self) -> f64 {
        self.inner.variance_population()
    }

    /// The raw accumulator state `(count, mean, m2)` — the same exact
    /// checkpoint form as [`Welford::state`]. The serve daemon ships
    /// per-shard CPI accumulators across the merge boundary this way.
    pub fn state(&self) -> (u64, f64, f64) {
        self.inner.state()
    }

    /// Rebuilds an accumulator from [`state`](Self::state) output,
    /// bit-exactly.
    pub fn from_state(count: u64, mean: f64, m2: f64) -> Self {
        Self {
            inner: Welford::from_state(count, mean, m2),
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MergeableWelford) {
        let (a, b) = (&mut self.inner, &other.inner);
        if b.count == 0 {
            return;
        }
        if a.count == 0 {
            *a = *b;
            return;
        }
        let na = a.count as f64;
        let nb = b.count as f64;
        let n = na + nb;
        let delta = b.mean - a.mean;
        a.m2 += b.m2 + delta * delta * na * nb / n;
        a.mean += delta * nb / n;
        a.count += b.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_var(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n
    }

    #[test]
    fn matches_naive_variance() {
        let xs = [1.5, 2.25, 8.0, -3.0, 0.0, 100.0, 41.5];
        let w: Welford = xs.iter().copied().collect();
        assert!((w.variance_population() - naive_var(&xs)).abs() < 1e-9);
    }

    #[test]
    fn empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance_population(), 0.0);
        assert_eq!(w.variance_sample(), 0.0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn single_element() {
        let mut w = Welford::new();
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance_population(), 0.0);
        assert_eq!(w.variance_sample(), 0.0);
    }

    #[test]
    fn sample_variance_divides_by_n_minus_1() {
        let mut w = Welford::new();
        w.extend([1.0, 3.0]);
        assert_eq!(w.variance_population(), 1.0);
        assert_eq!(w.variance_sample(), 2.0);
    }

    #[test]
    fn unpush_inverts_push() {
        let base = [3.0, 1.0, 4.0, 1.0, 5.0];
        let mut w: Welford = base.iter().copied().collect();
        w.push(9.0);
        w.unpush(9.0);
        let fresh: Welford = base.iter().copied().collect();
        assert!((w.mean() - fresh.mean()).abs() < 1e-9);
        assert!((w.sum_sq_dev() - fresh.sum_sq_dev()).abs() < 1e-9);
        assert_eq!(w.count(), fresh.count());
    }

    #[test]
    fn unpush_to_empty() {
        let mut w = Welford::new();
        w.push(2.0);
        w.unpush(2.0);
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "unpush from empty")]
    fn unpush_empty_panics() {
        let mut w = Welford::new();
        w.unpush(1.0);
    }

    #[test]
    fn state_roundtrip_is_bit_exact() {
        let mut w = Welford::new();
        w.extend([1.5, 2.25, 8.0, -3.0, 0.123_456_789]);
        let (count, mean, m2) = w.state();
        let back = Welford::from_state(count, mean, m2);
        assert_eq!(back, w);
        // Continue pushing on both and stay bit-identical.
        let mut a = w;
        let mut b = back;
        for x in [41.5, -0.001, 7.0] {
            a.push(x);
            b.push(x);
        }
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(
            a.variance_population().to_bits(),
            b.variance_population().to_bits()
        );
    }

    #[test]
    fn weighted_reduces_to_unweighted() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = WeightedWelford::new();
        for &x in &xs {
            w.push(x, 1.0);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_ignores_nonpositive_weight() {
        let mut w = WeightedWelford::new();
        w.push(10.0, 0.0);
        w.push(10.0, -1.0);
        assert_eq!(w.weight(), 0.0);
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn weighted_duplicates_equal_integer_weights() {
        let mut a = WeightedWelford::new();
        a.push(1.0, 2.0);
        a.push(5.0, 1.0);
        let mut b = WeightedWelford::new();
        for x in [1.0, 1.0, 5.0] {
            b.push(x, 1.0);
        }
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.variance() - b.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_combined() {
        let xs = [1.0, 2.0, 3.5, -1.0];
        let ys = [10.0, 20.0, 30.0];
        let mut a = MergeableWelford::new();
        a.extend(xs.iter().copied());
        let mut b = MergeableWelford::new();
        b.extend(ys.iter().copied());
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        assert!((a.variance_population() - naive_var(&all)).abs() < 1e-9);
        assert_eq!(a.count(), 7);
    }

    #[test]
    fn mergeable_state_roundtrip_is_bit_exact() {
        let mut a = MergeableWelford::new();
        a.extend([0.25, 1.75, 3.125, -0.5]);
        let (count, mean, m2) = a.state();
        let back = MergeableWelford::from_state(count, mean, m2);
        assert_eq!(back, a);
        assert_eq!(back.mean().to_bits(), a.mean().to_bits());
        assert_eq!(
            back.variance_population().to_bits(),
            a.variance_population().to_bits()
        );
    }

    #[test]
    fn merge_order_over_sorted_parts_is_deterministic() {
        // Folding parts in one fixed (sorted) order must give the same
        // bits every time — the property the cross-shard suite merge
        // leans on: order is derived from tokens, never from shard
        // layout, so any sharding collapses to the same fold.
        let parts: Vec<MergeableWelford> = (0..5)
            .map(|i| {
                let mut w = MergeableWelford::new();
                w.extend((0..10).map(|j| 0.1 * (i * 10 + j) as f64));
                w
            })
            .collect();
        let fold = |ps: &[MergeableWelford]| {
            let mut acc = MergeableWelford::new();
            for p in ps {
                acc.merge(p);
            }
            acc.state()
        };
        let a = fold(&parts);
        let b = fold(&parts);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(a.2.to_bits(), b.2.to_bits());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MergeableWelford::new();
        a.extend([1.0, 2.0]);
        let before = a;
        a.merge(&MergeableWelford::new());
        assert_eq!(a, before);

        let mut empty = MergeableWelford::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
    }
}
