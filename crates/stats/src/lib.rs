//! Statistical foundations for the `fuzzyphase` workspace.
//!
//! This crate bundles the numerical building blocks that every other crate
//! in the workspace relies on:
//!
//! * [`rng`] — deterministic random-number management. Every stochastic
//!   component in the workspace derives its randomness from an explicit
//!   `u64` seed so that full experiment suites are reproducible.
//! * [`welford`] — streaming mean/variance accumulators (Welford's
//!   algorithm), including weighted and mergeable variants.
//! * [`summary`] — one-shot descriptive statistics over slices.
//! * [`histogram`] — fixed-width binned histograms.
//! * [`dist`] — the sampling distributions used by the synthetic workload
//!   models (Zipf, log-normal, Pareto, discrete alias tables, …).
//! * [`kfold`] — the K-fold partitioner used by regression-tree
//!   cross-validation (§4.4 of the paper).
//! * [`sparse`] — sparse vectors, the representation of EIP vectors
//!   (server workloads touch tens of thousands of unique EIPs but each
//!   vector holds at most ~100 samples).
//! * [`timeseries`] — small time-series helpers (autocorrelation, moving
//!   averages) used for the EIP/CPI "spread" figures.
//!
//! # Example
//!
//! ```
//! use fuzzyphase_stats::welford::Welford;
//!
//! let mut acc = Welford::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     acc.push(x);
//! }
//! assert_eq!(acc.mean(), 2.5);
//! assert!((acc.variance_population() - 1.25).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod dist;
pub mod histogram;
pub mod kfold;
pub mod rng;
pub mod sparse;
pub mod summary;
pub mod timeseries;
pub mod welford;

pub use dist::{poisson, prob_round, Alias, Discrete, Exponential, LogNormal, Pareto, Zipf};
pub use histogram::Histogram;
pub use kfold::KFold;
pub use rng::{seeded_rng, SeedSequence};
pub use sparse::SparseVec;
pub use summary::Summary;
pub use welford::{MergeableWelford, WeightedWelford, Welford};

/// Population variance of a slice in one pass.
///
/// Returns 0.0 for slices with fewer than one element.
///
/// ```
/// let v = fuzzyphase_stats::variance(&[1.0, 2.0, 3.0, 4.0]);
/// assert!((v - 1.25).abs() < 1e-12);
/// ```
pub fn variance(xs: &[f64]) -> f64 {
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    w.variance_population()
}

/// Arithmetic mean of a slice; 0.0 if empty.
///
/// ```
/// assert_eq!(fuzzyphase_stats::mean(&[2.0, 4.0]), 3.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
