//! Sparse vectors.
//!
//! An EIP vector (§3.2) conceptually has one dimension per unique EIP in
//! the whole run — over 20,000 for ODB-C — but is built from only ~100
//! samples, so at most 100 entries are non-zero. Vectors are therefore
//! stored as sorted `(index, value)` pairs.

use serde::{Deserialize, Serialize};

/// A sparse vector of `f64` entries indexed by `u32`, sorted by index.
///
/// Absent indices are implicitly zero. All operations preserve the sorted,
/// deduplicated invariant.
///
/// ```
/// use fuzzyphase_stats::SparseVec;
/// let mut v = SparseVec::new();
/// v.add(5, 2.0);
/// v.add(1, 1.0);
/// v.add(5, 3.0); // accumulates
/// assert_eq!(v.get(5), 5.0);
/// assert_eq!(v.get(3), 0.0);
/// assert_eq!(v.nnz(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    entries: Vec<(u32, f64)>,
}

impl SparseVec {
    /// Creates an empty (all-zero) vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from unsorted `(index, value)` pairs, accumulating duplicates
    /// and dropping zero results.
    pub fn from_pairs<I: IntoIterator<Item = (u32, f64)>>(pairs: I) -> Self {
        let mut entries: Vec<(u32, f64)> = pairs.into_iter().collect();
        entries.sort_by_key(|&(i, _)| i);
        let mut out: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match out.last_mut() {
                Some(last) if last.0 == i => last.1 += v,
                _ => out.push((i, v)),
            }
        }
        out.retain(|&(_, v)| v != 0.0);
        Self { entries: out }
    }

    /// Adds `value` to the entry at `index`.
    pub fn add(&mut self, index: u32, value: f64) {
        if value == 0.0 {
            return;
        }
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => {
                self.entries[pos].1 += value;
                if self.entries[pos].1 == 0.0 {
                    self.entries.remove(pos);
                }
            }
            Err(pos) => self.entries.insert(pos, (index, value)),
        }
    }

    /// Value at `index` (0.0 if absent).
    pub fn get(&self, index: u32) -> f64 {
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether every entry is zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates stored `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt()
    }

    /// Scales every entry by `factor` (dropping all entries when `factor`
    /// is zero).
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            self.entries.clear();
            return;
        }
        for e in &mut self.entries {
            e.1 *= factor;
        }
    }

    /// Normalizes to unit L1 mass (no-op on the zero vector).
    pub fn normalize_l1(&mut self) {
        let s = self.sum();
        if s != 0.0 {
            self.scale(1.0 / s);
        }
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b) = (self.entries.iter(), other.entries.iter());
        let (mut x, mut y) = (a.next(), b.next());
        let mut acc = 0.0;
        while let (Some(&(i, vi)), Some(&(j, vj))) = (x, y) {
            match i.cmp(&j) {
                std::cmp::Ordering::Less => x = a.next(),
                std::cmp::Ordering::Greater => y = b.next(),
                std::cmp::Ordering::Equal => {
                    acc += vi * vj;
                    x = a.next();
                    y = b.next();
                }
            }
        }
        acc
    }

    /// Squared Euclidean distance to another sparse vector.
    pub fn dist2(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b) = (self.entries.iter(), other.entries.iter());
        let (mut x, mut y) = (a.next(), b.next());
        let mut acc = 0.0;
        loop {
            match (x, y) {
                (Some(&(i, vi)), Some(&(j, vj))) => match i.cmp(&j) {
                    std::cmp::Ordering::Less => {
                        acc += vi * vi;
                        x = a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        acc += vj * vj;
                        y = b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        acc += (vi - vj) * (vi - vj);
                        x = a.next();
                        y = b.next();
                    }
                },
                (Some(&(_, vi)), None) => {
                    acc += vi * vi;
                    x = a.next();
                }
                (None, Some(&(_, vj))) => {
                    acc += vj * vj;
                    y = b.next();
                }
                (None, None) => break,
            }
        }
        acc
    }

    /// Squared distance to a dense vector (used by k-means centroids).
    ///
    /// Dense entries beyond the sparse vector's support still contribute.
    pub fn dist2_dense(&self, dense: &[f64]) -> f64 {
        let mut acc: f64 = dense.iter().map(|&v| v * v).sum();
        for &(i, v) in &self.entries {
            let d = dense.get(i as usize).copied().unwrap_or(0.0);
            // Replace d^2 with (v - d)^2.
            acc += (v - d) * (v - d) - d * d;
        }
        acc.max(0.0)
    }

    /// Accumulates this vector into a dense buffer (`buf[i] += v`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for `buf`.
    pub fn add_into_dense(&self, buf: &mut [f64]) {
        for &(i, v) in &self.entries {
            buf[i as usize] += v;
        }
    }

    /// Largest stored index plus one (the minimum dense dimension that can
    /// hold this vector); 0 if empty.
    pub fn dim_bound(&self) -> usize {
        self.entries.last().map_or(0, |&(i, _)| i as usize + 1)
    }
}

impl FromIterator<(u32, f64)> for SparseVec {
    fn from_iter<I: IntoIterator<Item = (u32, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVec::from_pairs([(3, 1.0), (1, 2.0), (3, 4.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(1), 2.0);
        assert_eq!(v.get(3), 5.0);
        let idx: Vec<u32> = v.iter().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn zero_entries_dropped() {
        let v = SparseVec::from_pairs([(1, 1.0), (1, -1.0), (2, 3.0)]);
        assert_eq!(v.nnz(), 1);
        let mut w = SparseVec::new();
        w.add(5, 2.0);
        w.add(5, -2.0);
        assert!(w.is_empty());
    }

    #[test]
    fn dot_product() {
        let a = SparseVec::from_pairs([(0, 1.0), (2, 2.0), (4, 3.0)]);
        let b = SparseVec::from_pairs([(2, 5.0), (3, 7.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 13.0);
    }

    #[test]
    fn dist2_symmetric_and_zero_on_self() {
        let a = SparseVec::from_pairs([(0, 1.0), (7, 2.0)]);
        let b = SparseVec::from_pairs([(7, 5.0), (9, 1.0)]);
        assert_eq!(a.dist2(&a), 0.0);
        assert_eq!(a.dist2(&b), b.dist2(&a));
        // 1^2 + (2-5)^2 + 1^2 = 11
        assert_eq!(a.dist2(&b), 11.0);
    }

    #[test]
    fn dist2_dense_matches_sparse() {
        let a = SparseVec::from_pairs([(1, 2.0), (3, 4.0)]);
        let dense = [0.5, 1.0, 0.0, 4.0, 2.0];
        let expected = 0.25 + 1.0 + 0.0 + 0.0 + 4.0;
        assert!((a.dist2_dense(&dense) - expected).abs() < 1e-12);
    }

    #[test]
    fn normalize_l1() {
        let mut v = SparseVec::from_pairs([(0, 1.0), (1, 3.0)]);
        v.normalize_l1();
        assert!((v.sum() - 1.0).abs() < 1e-12);
        assert_eq!(v.get(1), 0.75);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = SparseVec::new();
        v.normalize_l1();
        assert!(v.is_empty());
    }

    #[test]
    fn add_into_dense() {
        let v = SparseVec::from_pairs([(0, 1.0), (2, 2.0)]);
        let mut buf = [10.0, 10.0, 10.0];
        v.add_into_dense(&mut buf);
        assert_eq!(buf, [11.0, 10.0, 12.0]);
    }

    #[test]
    fn dim_bound() {
        assert_eq!(SparseVec::new().dim_bound(), 0);
        assert_eq!(SparseVec::from_pairs([(9, 1.0)]).dim_bound(), 10);
    }

    #[test]
    fn norm() {
        let v = SparseVec::from_pairs([(0, 3.0), (5, 4.0)]);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn scale_zero_clears() {
        let mut v = SparseVec::from_pairs([(0, 3.0)]);
        v.scale(0.0);
        assert!(v.is_empty());
    }
}
