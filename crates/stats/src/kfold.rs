//! K-fold partitioning for cross-validation.
//!
//! §4.4 of the paper divides the (EIPV, CPI) data set into 10 random parts
//! and builds one regression tree per left-out part. This module provides
//! the shuffled partitioner.

use rand::seq::SliceRandom;

use crate::rng::seeded_rng;

/// A K-fold split of `n` items into `k` near-equal shuffled parts.
///
/// Fold sizes differ by at most one; every index appears in exactly one
/// fold.
///
/// ```
/// use fuzzyphase_stats::KFold;
/// let kf = KFold::new(10, 3, 42);
/// let all: usize = kf.folds().iter().map(|f| f.len()).sum();
/// assert_eq!(all, 10);
/// assert_eq!(kf.num_folds(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Splits `0..n` into `k` shuffled folds using `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one fold");
        assert!(k <= n, "cannot split {n} items into {k} folds");
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = seeded_rng(seed);
        indices.shuffle(&mut rng);
        let base = n / k;
        let extra = n % k;
        let mut folds = Vec::with_capacity(k);
        let mut start = 0;
        for i in 0..k {
            let len = base + usize::from(i < extra);
            folds.push(indices[start..start + len].to_vec());
            start += len;
        }
        Self { folds }
    }

    /// Number of folds.
    pub fn num_folds(&self) -> usize {
        self.folds.len()
    }

    /// All folds.
    pub fn folds(&self) -> &[Vec<usize>] {
        &self.folds
    }

    /// The held-out ("test") indices of fold `i`.
    pub fn test_indices(&self, i: usize) -> &[usize] {
        &self.folds[i]
    }

    /// The training indices for fold `i` (everything not in fold `i`).
    pub fn train_indices(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (j, fold) in self.folds.iter().enumerate() {
            if j != i {
                out.extend_from_slice(fold);
            }
        }
        out
    }

    /// Iterates `(train, test)` pairs over all folds.
    pub fn splits(&self) -> impl Iterator<Item = (Vec<usize>, &[usize])> + '_ {
        (0..self.num_folds()).map(move |i| (self.train_indices(i), self.test_indices(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn partition_is_exact() {
        let kf = KFold::new(23, 10, 7);
        let mut seen = HashSet::new();
        for fold in kf.folds() {
            for &i in fold {
                assert!(seen.insert(i), "index {i} in two folds");
            }
        }
        assert_eq!(seen.len(), 23);
    }

    #[test]
    fn fold_sizes_balanced() {
        let kf = KFold::new(23, 10, 7);
        let sizes: Vec<usize> = kf.folds().iter().map(|f| f.len()).collect();
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
        assert_eq!(sizes.iter().sum::<usize>(), 23);
    }

    #[test]
    fn train_test_disjoint_and_complete() {
        let kf = KFold::new(30, 10, 1);
        for i in 0..10 {
            let train: HashSet<usize> = kf.train_indices(i).into_iter().collect();
            let test: HashSet<usize> = kf.test_indices(i).iter().copied().collect();
            assert!(train.is_disjoint(&test));
            assert_eq!(train.len() + test.len(), 30);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(KFold::new(50, 5, 99), KFold::new(50, 5, 99));
        assert_ne!(KFold::new(50, 5, 99), KFold::new(50, 5, 100));
    }

    #[test]
    fn shuffling_happens() {
        // With 100 items the identity permutation is astronomically unlikely.
        let kf = KFold::new(100, 2, 3);
        let first: Vec<usize> = kf.folds()[0].clone();
        assert_ne!(first, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn splits_iterator_covers_all_folds() {
        let kf = KFold::new(12, 4, 5);
        assert_eq!(kf.splits().count(), 4);
        for (train, test) in kf.splits() {
            assert_eq!(train.len(), 9);
            assert_eq!(test.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_folds_than_items_rejected() {
        KFold::new(3, 10, 0);
    }
}
