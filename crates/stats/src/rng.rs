//! Deterministic random-number management.
//!
//! Every stochastic component in the workspace takes an explicit `u64`
//! seed. Components that need several independent random streams derive
//! sub-seeds through a [`SeedSequence`], which applies a SplitMix64-style
//! mix so that adjacent seeds (0, 1, 2, …) still produce statistically
//! independent streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step: advances the state and returns the next 64-bit output.
///
/// This is the standard finalizer from Vigna's SplitMix64, used here to
/// derive child seeds from `(seed, label)` pairs.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a [`StdRng`] from a raw seed after one mixing round.
///
/// ```
/// use rand::Rng;
/// let mut a = fuzzyphase_stats::seeded_rng(7);
/// let mut b = fuzzyphase_stats::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    let mut s = seed;
    let mixed = splitmix64(&mut s);
    StdRng::seed_from_u64(mixed)
}

/// Derives independent child seeds from a root seed.
///
/// `SeedSequence` is the workspace convention for fanning one experiment
/// seed out to many components (one stream for the workload generator, one
/// for the scheduler, one per cross-validation shuffle, …) without the
/// streams being correlated.
///
/// ```
/// use fuzzyphase_stats::SeedSequence;
/// let seq = SeedSequence::new(42);
/// assert_ne!(seq.seed_for("workload"), seq.seed_for("scheduler"));
/// // Deterministic: the same label always yields the same seed.
/// assert_eq!(seq.seed_for("workload"), SeedSequence::new(42).seed_for("workload"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed this sequence was created with.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives a child seed for a string label.
    pub fn seed_for(&self, label: &str) -> u64 {
        // FNV-1a over the label, folded into the root via SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut s = self.root ^ h;
        splitmix64(&mut s)
    }

    /// Derives a child seed for a numeric index (e.g. CV fold number).
    pub fn seed_for_index(&self, index: u64) -> u64 {
        let mut s = self.root ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut s)
    }

    /// Convenience: an [`StdRng`] for a string label.
    pub fn rng_for(&self, label: &str) -> StdRng {
        seeded_rng(self.seed_for(label))
    }

    /// Convenience: an [`StdRng`] for a numeric index.
    pub fn rng_for_index(&self, index: u64) -> StdRng {
        seeded_rng(self.seed_for_index(index))
    }

    /// Derives a nested sequence, useful for per-benchmark sub-streams.
    pub fn subsequence(&self, label: &str) -> SeedSequence {
        SeedSequence::new(self.seed_for(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix_known_values() {
        // Reference values for SplitMix64 seeded with 0.
        let mut s = 0u64;
        let first = splitmix64(&mut s);
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
        let second = splitmix64(&mut s);
        assert_eq!(second, 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let xs: Vec<u32> = (0..16).map(|_| 0).collect();
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        let va: Vec<u32> = xs.iter().map(|_| a.gen()).collect();
        let vb: Vec<u32> = xs.iter().map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seed_sequence_labels_are_distinct() {
        let seq = SeedSequence::new(0);
        let mut seen = HashSet::new();
        for label in ["a", "b", "c", "workload", "scheduler", "cv", "kmeans"] {
            assert!(seen.insert(seq.seed_for(label)), "collision for {label}");
        }
    }

    #[test]
    fn seed_sequence_indices_are_distinct() {
        let seq = SeedSequence::new(99);
        let mut seen = HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(seq.seed_for_index(i)));
        }
    }

    #[test]
    fn subsequence_differs_from_parent() {
        let seq = SeedSequence::new(7);
        let sub = seq.subsequence("child");
        assert_ne!(seq.seed_for("x"), sub.seed_for("x"));
    }
}
