//! Golden byte-stability test: the JSON a fixed fixture produces is
//! pinned to a checked-in file. Any change to the fit, the ranking, the
//! explanation formats, or the serialization order shows up here as a
//! byte diff — which is exactly the wire contract the daemon's `Diff`
//! reply and the offline `fuzzydiff` CLI rely on.

use fuzzyphase_diff::{diff, DiffOptions};
use fuzzyphase_profiler::{EipvData, Sample};
use std::path::Path;

/// A deterministic two-sided fixture: side A loops a "fast" kernel over
/// EIPs 0x400a00..0x400a30, side B spends part of its time in a "slow"
/// region 0x400b00..0x400b20 with double the CPI. Mirrors the shape of
/// a gzip-like run before/after a regression.
fn fixture() -> (EipvData, EipvData) {
    let mut a = Vec::new();
    for i in 0..160u64 {
        a.push(Sample {
            eip: 0x400a00 + (i % 6) * 8,
            thread: 0,
            is_os: false,
            cpi: 0.9 + (i % 11) as f64 * 0.02,
        });
    }
    let mut b = Vec::new();
    for i in 0..160u64 {
        // Every other interval of side B dives into the slow region.
        let (eip, cpi) = if (i / 8) % 2 == 0 {
            (0x400a00 + (i % 6) * 8, 0.95 + (i % 7) as f64 * 0.02)
        } else {
            (0x400b00 + (i % 4) * 8, 2.1 + (i % 5) as f64 * 0.03)
        };
        b.push(Sample {
            eip,
            thread: 0,
            is_os: false,
            cpi,
        });
    }
    (EipvData::from_samples(&a, 8), EipvData::from_samples(&b, 8))
}

#[test]
fn report_json_matches_golden_bytes() {
    let (a, b) = fixture();
    let rep = diff(&a, &b, "baseline", "candidate", &DiffOptions::default()).expect("diff");
    let json = rep.to_json();
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/diff_report.golden.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, format!("{json}\n")).expect("write golden file");
    }
    let expected = std::fs::read_to_string(&golden_path).expect("read golden file");
    assert_eq!(
        json,
        expected.trim_end(),
        "DiffReport bytes drifted; if intentional, regenerate \
         tests/fixtures/diff_report.golden.json from this test's fixture"
    );
}

#[test]
fn golden_fixture_is_meaningfully_separable() {
    let (a, b) = fixture();
    let rep = diff(&a, &b, "baseline", "candidate", &DiffOptions::default()).expect("diff");
    // Half of side B's intervals are bit-for-bit like side A's, so the
    // tree can separate at most the slow half — about a third of the
    // indicator variance.
    assert!(rep.separability > 0.3, "sep {}", rep.separability);
    let top = rep.top_path().expect("paths");
    // The top discriminant must implicate the slow region or the fast
    // kernel it displaced.
    let eip = top.predicates.last().expect("predicates").eip;
    assert!(
        (0x400a00..0x400a30).contains(&eip) || (0x400b00..0x400b20).contains(&eip),
        "unexpected discriminant eip {eip:#x}"
    );
    assert!(
        top.cpi_delta > 0.0,
        "candidate should be slower in the top path"
    );
}
