//! Property tests for the differential-analysis engine.

use fuzzyphase_diff::{diff, DiffOptions};
use fuzzyphase_profiler::{EipvData, Sample};
use proptest::prelude::*;

/// A random stream of samples over a small EIP alphabet with CPIs in a
/// given band; `spv = 8` samples per vector.
fn side_strategy(base: u64, lo: f64, hi: f64) -> impl Strategy<Value = EipvData> {
    prop::collection::vec((0u64..6, lo..hi), 16..200).prop_map(move |raw| {
        let samples: Vec<Sample> = raw
            .into_iter()
            .map(|(off, cpi)| Sample {
                eip: base + off * 8,
                thread: 0,
                is_os: false,
                cpi,
            })
            .collect();
        EipvData::from_samples(&samples, 8)
    })
}

proptest! {
    /// Swapping the class A/B arguments mirrors the report
    /// deterministically: same tree, same ranking, summaries and
    /// per-path CPI columns swapped, `cpi_delta` negated bit-exactly.
    #[test]
    fn label_swap_mirrors_the_report(
        a in side_strategy(0x1000, 0.5, 1.5),
        b in side_strategy(0x1010, 1.5, 3.0),
    ) {
        let opts = DiffOptions::default();
        let fwd = diff(&a, &b, "base", "cand", &opts).expect("fwd");
        let rev = diff(&b, &a, "cand", "base", &opts).expect("rev");

        prop_assert_eq!(&fwd.class_a, &rev.class_b);
        prop_assert_eq!(&fwd.class_b, &rev.class_a);
        prop_assert_eq!(fwd.num_features, rev.num_features);
        prop_assert_eq!(fwd.leaves, rev.leaves);
        prop_assert_eq!(fwd.separability.to_bits(), rev.separability.to_bits());
        prop_assert_eq!(fwd.paths.len(), rev.paths.len());
        for (f, r) in fwd.paths.iter().zip(&rev.paths) {
            prop_assert_eq!(&f.class, &r.class);
            prop_assert_eq!(&f.predicates, &r.predicates);
            prop_assert_eq!(f.support, r.support);
            prop_assert_eq!(f.a_vectors, r.b_vectors);
            prop_assert_eq!(f.b_vectors, r.a_vectors);
            prop_assert_eq!(f.purity.to_bits(), r.purity.to_bits());
            prop_assert_eq!(f.score.to_bits(), r.score.to_bits());
            prop_assert_eq!(f.cpi_a.to_bits(), r.cpi_b.to_bits());
            prop_assert_eq!(f.cpi_b.to_bits(), r.cpi_a.to_bits());
            prop_assert_eq!(f.cpi_delta.to_bits(), (-r.cpi_delta).to_bits());
        }
    }

    /// The same inputs always serialize to the same bytes (run-to-run
    /// determinism of the full fit + render pipeline).
    #[test]
    fn refit_is_byte_stable(
        a in side_strategy(0x2000, 0.8, 1.2),
        b in side_strategy(0x2000, 0.9, 2.5),
    ) {
        let opts = DiffOptions::default();
        let r1 = diff(&a, &b, "a", "b", &opts).expect("r1");
        let r2 = diff(&a, &b, "a", "b", &opts).expect("r2");
        prop_assert_eq!(r1.to_json(), r2.to_json());
    }

    /// Structural invariants every report obeys: purity in [1/2, 1],
    /// scores ranked non-increasing, path supports sum to the union
    /// size, and side counts add up per path.
    #[test]
    fn report_invariants_hold(
        a in side_strategy(0x3000, 0.5, 2.0),
        b in side_strategy(0x3020, 0.5, 2.0),
    ) {
        let rep = diff(&a, &b, "a", "b", &DiffOptions::default()).expect("diff");
        let total: u64 = rep.class_a.vectors + rep.class_b.vectors;
        let mut support_sum = 0u64;
        let mut prev = f64::INFINITY;
        for p in &rep.paths {
            prop_assert!((0.5..=1.0).contains(&p.purity));
            prop_assert!(p.score <= prev);
            prev = p.score;
            prop_assert_eq!(p.a_vectors + p.b_vectors, p.support);
            support_sum += p.support;
        }
        prop_assert_eq!(support_sum, total);
        prop_assert!((0.0..=1.0).contains(&rep.separability));
        prop_assert_eq!(rep.paths.len() as u64, rep.leaves);
    }
}
