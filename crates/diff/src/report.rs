//! The deterministic differential-analysis report.
//!
//! Every field is a plain struct or `Vec` — no maps, no platform- or
//! thread-dependent values — so `serde_json` serialization is
//! byte-stable run-to-run and machine-to-machine (the vendored-serde
//! convention the rest of the workspace follows; pinned by the golden
//! test in `tests/golden.rs`). Field order is declaration order.

use serde::{Deserialize, Serialize};

/// One side of the diff, summarized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// The caller-supplied label (a resume token, spool path, or name).
    pub label: String,
    /// EIPV vectors this side contributed.
    pub vectors: u64,
    /// Mean interval CPI over those vectors.
    pub cpi_mean: f64,
}

/// One predicate along a discriminating path: "is the count of `eip`
/// in this interval ≤ `threshold`?" (or `>` when `le` is false).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffPredicate {
    /// Feature id in the diff's union feature space.
    pub feature: u32,
    /// The EIP address the feature id maps to.
    pub eip: u64,
    /// Count threshold.
    pub threshold: f64,
    /// `true`: this path takes the `count ≤ threshold` side; `false`:
    /// the `count > threshold` side.
    pub le: bool,
}

impl DiffPredicate {
    /// Human-readable form, e.g. `eip 0x400a10 <= 3`.
    pub fn describe(&self) -> String {
        let op = if self.le { "<=" } else { ">" };
        format!("eip {:#x} {} {}", self.eip, op, self.threshold)
    }
}

/// One root-to-leaf path of the discriminant tree: a conjunction of
/// predicates plus the class statistics of the vectors that land there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffPath {
    /// Label of the majority class in this leaf (ties go to the side
    /// whose label sorts first).
    pub class: String,
    /// The predicates from root to leaf, in split order.
    pub predicates: Vec<DiffPredicate>,
    /// Total vectors in the leaf.
    pub support: u64,
    /// Vectors from side A in the leaf.
    pub a_vectors: u64,
    /// Vectors from side B in the leaf.
    pub b_vectors: u64,
    /// Majority-class fraction of the leaf (0.5 ≤ purity ≤ 1).
    pub purity: f64,
    /// Ranking key: `purity × support / total_vectors`.
    pub score: f64,
    /// Mean CPI of side A's vectors in the leaf (side A's global mean
    /// when none land here).
    pub cpi_a: f64,
    /// Mean CPI of side B's vectors in the leaf (side B's global mean
    /// when none land here).
    pub cpi_b: f64,
    /// `cpi_b − cpi_a`: how much slower side B runs in this region.
    pub cpi_delta: f64,
    /// Human-readable one-line explanation of this path.
    pub explanation: String,
}

/// The differential-analysis report: which EIPV features separate two
/// labeled runs, as ranked discriminating paths.
///
/// Deterministic by construction: the fit canonicalizes the side order
/// by label, every reduction runs in row order, and ranking ties break
/// on support then leaf index — the same two inputs always produce the
/// same bytes, whether the report came from the offline `fuzzydiff` CLI
/// or the daemon's `Diff` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Side A (the caller's first argument — conventionally the
    /// "fast"/baseline run).
    pub class_a: ClassSummary,
    /// Side B (the caller's second argument — conventionally the
    /// "slow"/candidate run).
    pub class_b: ClassSummary,
    /// Unique EIPs across the union of both sides.
    pub num_features: u64,
    /// Leaves of the fitted discriminant tree.
    pub leaves: u64,
    /// Fraction of the class-indicator variance the tree separates
    /// (`1 − Σ leaf SSE / root SSE`, clamped to `[0, 1]`): 1.0 means
    /// the sides are perfectly distinguishable from EIPVs alone, 0.0
    /// means they are statistically indistinguishable.
    pub separability: f64,
    /// Discriminating paths, ranked by `purity × support` descending.
    pub paths: Vec<DiffPath>,
    /// Human-readable summary of the whole diff.
    pub explanation: String,
}

impl DiffReport {
    /// The report as one compact JSON line — the exact bytes the daemon
    /// streams in its `Diff` reply and the CLI prints, so the two can
    /// be compared byte-for-byte.
    pub fn to_json(&self) -> String {
        // fuzzylint: allow(panic) — plain structs of finite floats
        // cannot fail to serialize; a failure here is a code bug
        serde_json::to_string(self).expect("DiffReport serializes")
    }

    /// The highest-ranked path, if the tree produced any.
    pub fn top_path(&self) -> Option<&DiffPath> {
        self.paths.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_description_is_stable() {
        let p = DiffPredicate {
            feature: 3,
            eip: 0x400A10,
            threshold: 3.0,
            le: true,
        };
        assert_eq!(p.describe(), "eip 0x400a10 <= 3");
        let q = DiffPredicate { le: false, ..p };
        assert_eq!(q.describe(), "eip 0x400a10 > 3");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let rep = DiffReport {
            class_a: ClassSummary {
                label: "sess-00000001".into(),
                vectors: 10,
                cpi_mean: 1.25,
            },
            class_b: ClassSummary {
                label: "sess-00000002".into(),
                vectors: 12,
                cpi_mean: 2.5,
            },
            num_features: 40,
            leaves: 2,
            separability: 0.97,
            paths: vec![DiffPath {
                class: "sess-00000002".into(),
                predicates: vec![DiffPredicate {
                    feature: 7,
                    eip: 0x1234,
                    threshold: 2.0,
                    le: false,
                }],
                support: 12,
                a_vectors: 1,
                b_vectors: 11,
                purity: 11.0 / 12.0,
                score: 0.5,
                cpi_a: 1.2,
                cpi_b: 2.6,
                cpi_delta: 1.4,
                explanation: "x".into(),
            }],
            explanation: "y".into(),
        };
        let json = rep.to_json();
        let back: DiffReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, rep);
        // Re-serializing the parsed report reproduces the bytes — the
        // property the daemon/CLI bit-identity rests on.
        assert_eq!(back.to_json(), json);
    }
}
