//! `fuzzyphase-diff` — differential analysis: *why* do two runs of the
//! "same" workload perform differently?
//!
//! The paper measures how predictable CPI is from code signatures
//! (EIPVs); this crate answers the follow-up question a performance
//! debugger actually asks: given a baseline run A ("fast") and a
//! candidate run B ("slow"), **which code signatures separate them?**
//! It fits a discriminant tree over the union of the two sides' EIPV
//! rows with a 0/1 class-indicator target and reads the tree's
//! root-to-leaf paths back as ranked, human-readable explanations
//! ([`DiffReport`]).
//!
//! # Split criterion: weighted Gini via the shared kernel
//!
//! Splits are chosen by weighted Gini impurity reduction — but no Gini
//! search loop exists here. A group of `n` class-indicator targets with
//! class-1 fraction `p` has `SSE = n·p·(1−p) = n·Gini/2`, so the SSE
//! gain the regression kernel maximizes *is* the weighted Gini gain up
//! to the constant factor ½, candidate for candidate, tie for tie. The
//! fit therefore calls [`Fitter::full`] on the indicator dataset
//! and runs the exact columnar split kernel of `fuzzyphase-regtree`
//! (`kernel::grow_on_columns`), inheriting its batch/scalar
//! bit-identity contract (DESIGN.md D13) — build with `--features
//! scalar-ref` and the discriminant tree is bit-identical.
//!
//! # Determinism contract (DESIGN.md D14)
//!
//! The report's bytes depend only on the two inputs and [`DiffOptions`]:
//!
//! * sides are canonicalized by label order before the union is built,
//!   so `diff(a, b)` and `diff(b, a)` run the identical computation and
//!   differ only in which side the report calls A — mirrored, with
//!   `cpi_delta` exactly negated;
//! * the union re-interns EIPs in first-appearance order
//!   ([`EipvData::absorb`] — the same cross-shard merge primitive the
//!   daemon's `SuiteReport` uses), every reduction runs in row order,
//!   and ranking ties break on support then leaf index.
//!
//! The daemon's `Diff` reply and the offline `fuzzydiff` CLI pin this
//! down byte-for-byte in loopback tests.

#![warn(missing_docs)]

pub mod report;

pub use report::{ClassSummary, DiffPath, DiffPredicate, DiffReport};

use fuzzyphase_profiler::EipvData;
use fuzzyphase_regtree::{Dataset, Fitter, RegressionTree};
use fuzzyphase_stats::SparseVec;

/// Knobs of the discriminant fit. The defaults are part of the wire
/// determinism contract: the daemon and the offline CLI both fit with
/// `DiffOptions::default()`, which is how their reports can be compared
/// byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffOptions {
    /// Maximum leaves of the discriminant tree (best-first growth stops
    /// here; fewer when no split clears the gain bar).
    pub max_leaves: usize,
    /// Minimum vectors per side of any split.
    pub min_leaf: usize,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            max_leaves: 16,
            min_leaf: 2,
        }
    }
}

/// Why a diff could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// A side contributed no complete EIPV vectors.
    EmptySide(String),
    /// Both sides carry the same label, so the report could not tell
    /// them apart (labels are resume tokens or spool paths — distinct
    /// by construction in the daemon and CLI).
    IdenticalLabels(String),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::EmptySide(label) => {
                write!(f, "side '{label}' has no complete EIPV vectors to diff")
            }
            DiffError::IdenticalLabels(label) => {
                write!(f, "both sides are labeled '{label}'; labels must differ")
            }
        }
    }
}

impl std::error::Error for DiffError {}

/// Per-leaf class accumulator, filled in canonical row order.
#[derive(Clone, Copy, Default)]
struct LeafAcc {
    c0: u64,
    c1: u64,
    cpi0: f64,
    cpi1: f64,
}

/// Fits the discriminant tree between side A (`label_a`) and side B
/// (`label_b`) and renders the [`DiffReport`].
///
/// Class A is conventionally the fast/baseline run and class B the
/// slow/candidate run, but nothing depends on it: swapping the
/// arguments mirrors the report deterministically (summaries and
/// per-path CPI columns swap, `cpi_delta` negates bit-exactly, the
/// tree and ranking stay identical).
pub fn diff(
    a: &EipvData,
    b: &EipvData,
    label_a: &str,
    label_b: &str,
    opts: &DiffOptions,
) -> Result<DiffReport, DiffError> {
    if label_a == label_b {
        return Err(DiffError::IdenticalLabels(label_a.to_string()));
    }
    if a.is_empty() {
        return Err(DiffError::EmptySide(label_a.to_string()));
    }
    if b.is_empty() {
        return Err(DiffError::EmptySide(label_b.to_string()));
    }

    // Canonicalize: the side whose label sorts first becomes class 0.
    // Both argument orders now run the identical computation; only the
    // A/B presentation below depends on `swapped`.
    let swapped = label_b < label_a;
    let (l0, d0, l1, d1) = if swapped {
        (label_b, b, label_a, a)
    } else {
        (label_a, a, label_b, b)
    };

    // Union feature space: re-intern side 0 then side 1 — the same
    // first-appearance-order merge the daemon's cross-shard suite
    // report uses, so feature ids are deterministic.
    let mut union = EipvData::empty();
    union.absorb(d0);
    union.absorb(d1);
    let n0 = d0.len();
    let n1 = d1.len();
    let n = n0 + n1;
    let index = union.index;
    let cpis = union.cpis;

    // Class-indicator targets: side 0 → 0.0, side 1 → 1.0. On these
    // the regression kernel's SSE gain equals weighted Gini gain / 2.
    let mut y = vec![0.0f64; n];
    for t in y.iter_mut().skip(n0) {
        *t = 1.0;
    }
    let ds = Dataset::new(union.vectors, y);
    let tree = Fitter::new()
        .max_leaves(opts.max_leaves)
        .min_leaf(opts.min_leaf)
        .full(&ds);

    // Route every vector to its leaf and accumulate per-leaf class
    // counts and CPI sums, in canonical row order.
    let mut accs = vec![LeafAcc::default(); tree.nodes().len()];
    for (i, &cpi) in cpis.iter().enumerate().take(n) {
        let leaf = leaf_of(&tree, ds.row(i));
        let acc = &mut accs[leaf];
        if i < n0 {
            acc.c0 += 1;
            acc.cpi0 += cpi;
        } else {
            acc.c1 += 1;
            acc.cpi1 += cpi;
        }
    }

    // Global per-class CPI means (row order) — the fallback for leaves
    // one class never reaches.
    let mean0 = cpis[..n0].iter().sum::<f64>() / n0 as f64;
    let mean1 = cpis[n0..].iter().sum::<f64>() / n1 as f64;

    // Collect root-to-leaf paths (left child before right), then rank.
    let mut ranked: Vec<(usize, DiffPath)> = Vec::new();
    let mut stack: Vec<(usize, Vec<DiffPredicate>)> = vec![(0, Vec::new())];
    while let Some((idx, preds)) = stack.pop() {
        let node = &tree.nodes()[idx];
        if let (Some(split), Some(l), Some(r)) = (node.split, node.left, node.right) {
            let pred = |le: bool| DiffPredicate {
                feature: split.feature,
                eip: index.eip(split.feature),
                threshold: split.threshold,
                le,
            };
            let mut left_preds = preds.clone();
            left_preds.push(pred(true));
            let mut right_preds = preds;
            right_preds.push(pred(false));
            // Push right first so the left child pops (and ties rank)
            // first.
            stack.push((r as usize, right_preds));
            stack.push((l as usize, left_preds));
            continue;
        }
        let acc = accs[idx];
        let support = acc.c0 + acc.c1;
        debug_assert!(support > 0, "every leaf holds at least one row");
        // Majority class; ties go to the canonical-first side.
        let (maj_count, maj_is_1) = if acc.c1 > acc.c0 {
            (acc.c1, true)
        } else {
            (acc.c0, false)
        };
        let purity = maj_count as f64 / support as f64;
        let score = purity * (support as f64 / n as f64);
        let leaf_cpi0 = if acc.c0 > 0 {
            acc.cpi0 / acc.c0 as f64
        } else {
            mean0
        };
        let leaf_cpi1 = if acc.c1 > 0 {
            acc.cpi1 / acc.c1 as f64
        } else {
            mean1
        };
        // Map canonical sides back to the caller's A/B orientation.
        let (a_vectors, b_vectors, cpi_a, cpi_b) = if swapped {
            (acc.c1, acc.c0, leaf_cpi1, leaf_cpi0)
        } else {
            (acc.c0, acc.c1, leaf_cpi0, leaf_cpi1)
        };
        let class = if maj_is_1 { l1 } else { l0 };
        let cpi_delta = cpi_b - cpi_a;
        let conj = if preds.is_empty() {
            "(root)".to_string()
        } else {
            preds
                .iter()
                .map(DiffPredicate::describe)
                .collect::<Vec<_>>()
                .join(" and ")
        };
        let explanation = format!(
            "{conj} -> {maj_count}/{support} vectors from '{class}' (purity {purity:.3}); \
             mean CPI {cpi_a:.4} ('{label_a}') vs {cpi_b:.4} ('{label_b}'), delta {cpi_delta:+.4}"
        );
        ranked.push((
            idx,
            DiffPath {
                class: class.to_string(),
                predicates: preds,
                support,
                a_vectors,
                b_vectors,
                purity,
                score,
                cpi_a,
                cpi_b,
                cpi_delta,
                explanation,
            },
        ));
    }
    // Rank by purity × support; ties by support, then by leaf index in
    // the deterministic left-before-right collection order above.
    ranked.sort_by(|(ia, pa), (ib, pb)| {
        pb.score
            .total_cmp(&pa.score)
            .then(pb.support.cmp(&pa.support))
            .then(ia.cmp(ib))
    });
    let paths: Vec<DiffPath> = ranked.into_iter().map(|(_, p)| p).collect();

    // Separability: the fraction of indicator variance the tree
    // removed. Root SSE is `n·p·(1−p)` — zero only if a side were
    // empty, which was rejected above.
    let root_sse = tree.root().sse;
    let leaf_sse: f64 = tree
        .nodes()
        .iter()
        .filter(|nd| nd.is_leaf())
        .map(|nd| nd.sse)
        .sum();
    let separability = if root_sse > 0.0 {
        (1.0 - leaf_sse / root_sse).clamp(0.0, 1.0)
    } else {
        0.0
    };

    let (ma, mb) = if swapped {
        (mean1, mean0)
    } else {
        (mean0, mean1)
    };
    let (na, nb) = (a.len(), b.len());
    // fuzzylint: allow(panic) — both sides are non-empty, so the tree
    // has at least one leaf and one path
    let top = paths.first().expect("at least one leaf path");
    let explanation = format!(
        "'{label_a}' ({na} vectors, mean CPI {ma:.4}) vs '{label_b}' ({nb} vectors, mean CPI \
         {mb:.4}): separability {separability:.3}; top discriminant: {}",
        top.explanation
    );

    Ok(DiffReport {
        class_a: ClassSummary {
            label: label_a.to_string(),
            vectors: na as u64,
            cpi_mean: ma,
        },
        class_b: ClassSummary {
            label: label_b.to_string(),
            vectors: nb as u64,
            cpi_mean: mb,
        },
        num_features: index.len() as u64,
        leaves: tree.num_leaves() as u64,
        separability,
        paths,
        explanation,
    })
}

/// The leaf index `x` lands in under the fully-grown tree.
fn leaf_of(tree: &RegressionTree, x: &SparseVec) -> usize {
    let mut idx = 0usize;
    let mut node = &tree.nodes()[0];
    while let (Some(split), Some(l), Some(r)) = (node.split, node.left, node.right) {
        idx = if x.get(split.feature) <= split.threshold {
            l as usize
        } else {
            r as usize
        };
        node = &tree.nodes()[idx];
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_profiler::Sample;

    fn sample(eip: u64, cpi: f64) -> Sample {
        Sample {
            eip,
            thread: 0,
            is_os: false,
            cpi,
        }
    }

    /// Two sides with disjoint hot EIPs: side A hammers 0x100, side B
    /// hammers 0x200 with a slower CPI.
    fn fixture() -> (EipvData, EipvData) {
        let a: Vec<Sample> = (0..120)
            .map(|i| sample(0x100 + (i % 3), 1.0 + (i % 5) as f64 * 0.01))
            .collect();
        let b: Vec<Sample> = (0..120)
            .map(|i| sample(0x200 + (i % 4), 2.0 + (i % 7) as f64 * 0.01))
            .collect();
        (
            EipvData::from_samples(&a, 10),
            EipvData::from_samples(&b, 10),
        )
    }

    #[test]
    fn disjoint_sides_separate_perfectly() {
        let (a, b) = fixture();
        let rep = diff(&a, &b, "fast", "slow", &DiffOptions::default()).expect("diff");
        assert_eq!(rep.class_a.vectors, 12);
        assert_eq!(rep.class_b.vectors, 12);
        assert!(rep.separability > 0.999, "sep {}", rep.separability);
        let top = rep.top_path().expect("paths");
        assert_eq!(top.purity, 1.0);
        assert!(top.cpi_delta.abs() > 0.5);
        // The discriminating EIP belongs to one of the two hot ranges.
        let eip = top.predicates[0].eip;
        assert!((0x100..0x104).contains(&eip) || (0x200..0x204).contains(&eip));
    }

    #[test]
    fn identical_sides_are_inseparable() {
        let s: Vec<Sample> = (0..100).map(|i| sample(0x400 + (i % 5), 1.5)).collect();
        let a = EipvData::from_samples(&s, 10);
        let b = a.clone();
        let rep = diff(&a, &b, "x", "y", &DiffOptions::default()).expect("diff");
        // Identical EIPVs cannot be split apart: every leaf is a 50/50
        // mix.
        for p in &rep.paths {
            assert_eq!(p.purity, 0.5, "path {:?}", p.explanation);
        }
        assert_eq!(rep.separability, 0.0);
    }

    #[test]
    fn argument_swap_mirrors_the_report() {
        let (a, b) = fixture();
        let fwd = diff(&a, &b, "fast", "slow", &DiffOptions::default()).expect("diff");
        let rev = diff(&b, &a, "slow", "fast", &DiffOptions::default()).expect("diff");
        assert_eq!(fwd.class_a, rev.class_b);
        assert_eq!(fwd.class_b, rev.class_a);
        assert_eq!(fwd.num_features, rev.num_features);
        assert_eq!(fwd.separability.to_bits(), rev.separability.to_bits());
        assert_eq!(fwd.paths.len(), rev.paths.len());
        for (f, r) in fwd.paths.iter().zip(&rev.paths) {
            assert_eq!(f.class, r.class);
            assert_eq!(f.predicates, r.predicates);
            assert_eq!(f.support, r.support);
            assert_eq!(f.a_vectors, r.b_vectors);
            assert_eq!(f.b_vectors, r.a_vectors);
            assert_eq!(f.purity.to_bits(), r.purity.to_bits());
            assert_eq!(f.score.to_bits(), r.score.to_bits());
            assert_eq!(f.cpi_a.to_bits(), r.cpi_b.to_bits());
            assert_eq!(f.cpi_b.to_bits(), r.cpi_a.to_bits());
            assert_eq!(f.cpi_delta.to_bits(), (-r.cpi_delta).to_bits());
        }
    }

    #[test]
    fn rejects_empty_and_identically_labeled_sides() {
        let (a, _) = fixture();
        let empty = EipvData::empty();
        assert_eq!(
            diff(&empty, &a, "e", "a", &DiffOptions::default()),
            Err(DiffError::EmptySide("e".into()))
        );
        assert_eq!(
            diff(&a, &empty, "a", "e", &DiffOptions::default()),
            Err(DiffError::EmptySide("e".into()))
        );
        assert_eq!(
            diff(&a, &a, "same", "same", &DiffOptions::default()),
            Err(DiffError::IdenticalLabels("same".into()))
        );
    }

    #[test]
    fn report_is_byte_stable_across_refits() {
        let (a, b) = fixture();
        let r1 = diff(&a, &b, "fast", "slow", &DiffOptions::default()).expect("diff");
        let r2 = diff(&a, &b, "fast", "slow", &DiffOptions::default()).expect("diff");
        assert_eq!(r1.to_json(), r2.to_json());
    }
}
