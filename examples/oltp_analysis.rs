//! Reproduces the paper's §5 analysis of the OLTP workload (ODB-C): big
//! flat code footprint, L3-dominated CPI, and — despite a regression tree
//! trying its best — no usable EIP→CPI relationship.
//!
//! ```text
//! cargo run --release --example oltp_analysis
//! ```

use fuzzyphase::prelude::*;

fn main() {
    let req = AnalysisRequest::new().with_intervals(120);

    println!("profiling ODB-C on the simulated 4-way Itanium 2 ...");
    let r = req.run(&BenchmarkSpec::odb_c());

    // §5: the workload character.
    println!("\nworkload character (§5.2):");
    println!("  unique sampled EIPs : {}", r.profile.unique_eips());
    println!(
        "  context switches    : {:.0}/s (paper: ~2600/s)",
        r.profile.context_switches_per_second()
    );
    println!(
        "  OS time             : {:.1}% (paper: ~15%)",
        r.profile.os_fraction() * 100.0
    );

    // §5.1: CPI breakdown.
    let b = r.profile.mean_breakdown();
    println!("\nCPI breakdown (§5.1, Figure 4):");
    println!(
        "  CPI {:.2} = WORK {:.2} + FE {:.2} + EXE {:.2} + OTHER {:.2}",
        b.total(),
        b.work,
        b.fe,
        b.exe,
        b.other
    );
    println!(
        "  EXE (data-miss stalls, mostly L3) share: {:.0}% (paper: >50%)",
        b.exe_fraction() * 100.0
    );

    // §5 headline: EIPVs cannot predict CPI here.
    println!("\nregression-tree predictability (§5, Figure 2):");
    println!(
        "  CPI variance {:.4} (tiny), RE_min {:.3} (≈1: EIPs explain nothing)",
        r.report.cpi_variance, r.report.re_min
    );
    println!(
        "  quadrant: {} — {}",
        r.quadrant,
        r.quadrant.recommendation().name()
    );

    // §5.2: does per-thread separation help?
    let per_thread = r.profile.eipvs_per_thread();
    let thread_rep = analyze(&per_thread.vectors, &per_thread.cpis, req.analysis());
    println!(
        "\nthread separation (§5.2, Figure 6): RE_min {:.3} -> {:.3} (helps only minimally)",
        r.report.re_min, thread_rep.re_min
    );
}
