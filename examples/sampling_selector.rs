//! The paper's proposed methodology (§7): classify a workload into a
//! quadrant, pick the sampling technique the quadrant calls for, and
//! check that the pick actually wins (or ties) on estimation error.
//!
//! ```text
//! cargo run --release --example sampling_selector [benchmark]
//! ```
//!
//! `benchmark` can be `odb-c`, `sjas`, `qN` (N = 1..22) or a SPEC name;
//! default is `q13`.

use fuzzyphase::prelude::*;
use fuzzyphase::sampling::{
    evaluate_technique, PhaseSampling, RandomSampling, SmartsSampling, StratifiedPhaseSampling,
    Technique, UniformSampling,
};

fn parse_spec(arg: &str) -> BenchmarkSpec {
    match arg {
        "odb-c" => BenchmarkSpec::odb_c(),
        "sjas" => BenchmarkSpec::sjas(),
        q if q.starts_with('q') => {
            let n: u8 = q[1..].parse().expect("query number after 'q'");
            BenchmarkSpec::odb_h(n)
        }
        name => BenchmarkSpec::spec(name),
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "q13".to_string());
    let spec = parse_spec(&arg);

    let req = AnalysisRequest::new().with_intervals(120);

    println!("classifying {} ...", spec.name());
    let r = req.run(&spec);
    println!(
        "  variance {:.4}, RE_min {:.3} -> {}  (recommended: {})",
        r.report.cpi_variance,
        r.report.re_min,
        r.quadrant,
        r.quadrant.recommendation().name()
    );

    let eipvs = r.profile.eipvs();
    let budget = 10;
    let techniques: Vec<Box<dyn Technique>> = vec![
        Box::new(UniformSampling::new(budget)),
        Box::new(RandomSampling::new(budget)),
        Box::new(PhaseSampling::new(budget)),
        Box::new(StratifiedPhaseSampling::new(5, budget)),
        Box::new(SmartsSampling::new(budget, 0.02)),
    ];
    println!(
        "\ntechnique comparison (true CPI = {:.3}):",
        r.report.cpi_mean
    );
    for t in &techniques {
        let e = evaluate_technique(t.as_ref(), &eipvs.vectors, &eipvs.cpis, req.seed());
        println!(
            "  {:11} estimate {:.3}  error {:>6.2}%  cost {:>3} intervals",
            e.technique,
            e.estimated_cpi,
            e.relative_error * 100.0,
            e.cost_intervals
        );
    }
    println!("\n(§7: no single technique suits every workload — the quadrant picks it.)");
}
