//! Streaming a profiled workload into a local `fuzzyphased`.
//!
//! Spawns an in-process daemon, profiles one benchmark offline to get a
//! sample trace, then replays that trace over TCP the way a remote
//! profiler would: Hello, sample frames with backpressure, Finish,
//! Report. Prints the interim refits as they land and checks the final
//! quadrant against the offline pipeline.
//!
//! Run with: `cargo run --example serve_client`

use fuzzyphase::prelude::*;
use fuzzyphase_serve::{ServeClient, Server, ServerConfig, ServerMsg};

fn main() -> std::io::Result<()> {
    // A small profile so the example finishes in seconds.
    let req = AnalysisRequest::new().with_intervals(60).with_warmup(10);

    let spec = BenchmarkSpec::spec("mcf");
    let offline = req.run(&spec);
    let samples = &offline.profile.samples;
    let spv = req.profile().samples_per_interval();
    println!(
        "offline: {} samples, quadrant {} ({})",
        samples.len(),
        offline.quadrant,
        offline.quadrant.recommendation().name()
    );

    // The daemon, configured exactly like the offline run — the same
    // AnalysisRequest drives both.
    let server = Server::start(ServerConfig {
        request: req.clone(),
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr().to_string();
    println!("fuzzyphased listening on {addr}");

    // Stream the trace: refit every 10 vectors, 500 samples per frame.
    let mut client = ServeClient::connect(&addr)?;
    client.hello("mcf", spv, 10)?;
    client.stream_trace(samples, 500)?;
    client.finish()?;
    let (report, interim) = client.wait_report()?;

    for msg in &interim {
        if let ServerMsg::RefitDelta {
            vectors,
            nodes_changed,
            re_from,
            re_to,
            ..
        } = msg
        {
            println!(
                "  refit @ {vectors} vectors → {nodes_changed} node(s) changed, \
                 RE {re_from:.4} → {re_to:.4}"
            );
        }
    }
    if let ServerMsg::Report {
        report,
        quadrant,
        recommendation,
        samples,
        vectors,
    } = &report
    {
        println!(
            "streamed: {samples} samples / {vectors} vectors → {quadrant} \
             (cpi_var {:.4}, re_min {:.4}, rec: {})",
            report.cpi_variance,
            report.re_min,
            recommendation.name()
        );
        assert_eq!(*quadrant, offline.quadrant, "daemon must match offline");
        assert_eq!(
            report.re_curve, offline.report.re_curve,
            "streamed RE curve must be bit-identical to offline"
        );
        println!("bit-identical to the offline pipeline ✔");
    }

    client.close();
    server.shutdown();
    Ok(())
}
