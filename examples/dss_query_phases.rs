//! The paper's §6 contrast: two functionally similar DSS queries with
//! opposite phase behaviour.
//!
//! Q13 (scan + hash join + sort) runs a small code segment over a large
//! table — EIPVs identify the operator, the operator determines CPI.
//! Q18 does almost the same work, but through a B-tree *index scan*
//! whose cost depends on key locality in the data — same EIPs, wildly
//! varying CPI.
//!
//! ```text
//! cargo run --release --example dss_query_phases
//! ```

use fuzzyphase::prelude::*;

fn main() {
    let req = AnalysisRequest::new().with_intervals(120);

    for (q, expectation) in [
        (13u8, "strong phases (Q-IV)"),
        (18u8, "weak phases (Q-III)"),
    ] {
        println!("=== ODB-H Q{q} — paper expectation: {expectation} ===");
        let r = req.run(&BenchmarkSpec::odb_h(q));

        let cpis = r.profile.interval_cpis();
        let line: String = fuzzyphase::stats::timeseries::downsample(&cpis, 60)
            .iter()
            .map(|&c| {
                let lo = cpis.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = cpis.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let t = ((c - lo) / (hi - lo + 1e-12) * 7.0) as usize;
                ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'][t.min(7)]
            })
            .collect();
        println!("  interval CPI: {line}");
        println!(
            "  CPI {:.2}  variance {:.3}  unique EIPs {}",
            r.report.cpi_mean,
            r.report.cpi_variance,
            r.profile.unique_eips()
        );
        println!(
            "  RE_min {:.3} at k={} (asymptote {:.3}, k_opt {}) -> {}",
            r.report.re_min, r.report.k_at_min, r.report.re_asymptote, r.report.k_opt, r.quadrant
        );
        println!(
            "  EIPVs explain {:.0}% of the CPI variance\n",
            r.report.explained_variance * 100.0
        );
    }

    println!("Both queries scan/join/sort the same tables; only the access path differs.");
    println!("That difference alone moves a workload across the fuzzy phase boundary —");
    println!("the paper's core observation.");
}
