//! Bring your own workload: define a custom program model, profile it,
//! and let the library classify it and pick a sampling technique.
//!
//! The workload here is a toy "web cache" server: mostly-hot in-memory
//! lookups punctuated by periodic eviction sweeps over a large store —
//! the kind of behaviour the paper's methodology is designed to diagnose.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use fuzzyphase::arch::{BranchEvent, DataAccess, Quantum};
use fuzzyphase::prelude::*;
use fuzzyphase::stats::prob_round;
use fuzzyphase::workload::access::{in_space, scratch_traffic, MemoryRegion, StreamCursor};
use fuzzyphase::workload::code::CodeRegion;
use fuzzyphase::workload::scheduler::{MultiThreadWorkload, SchedulerConfig, ThreadBehavior};
use rand::rngs::StdRng;
use rand::Rng;

/// One cache-server worker: serve lookups; every ~2 intervals, run an
/// eviction sweep over the backing store.
struct CacheWorker {
    lookup_code: CodeRegion,
    sweep_code: CodeRegion,
    hot_store: MemoryRegion,
    cold_store: MemoryRegion,
    scratch: MemoryRegion,
    sweep_cursor: StreamCursor,
    /// Instructions until the next mode flip; negative = sweeping.
    phase_left: f64,
    sweeping: bool,
}

impl CacheWorker {
    fn new(idx: u16) -> Self {
        const SPACE: u16 = 900;
        Self {
            lookup_code: CodeRegion::new("lookup", in_space(SPACE, 0x4000_0000), 900, 0.9),
            sweep_code: CodeRegion::new("sweep", in_space(SPACE, 0x5000_0000), 250, 0.8),
            hot_store: MemoryRegion::new(in_space(SPACE, 0x1000_0000), 2 << 20),
            cold_store: MemoryRegion::new(in_space(SPACE, 0x40_0000_0000), 256 << 20),
            scratch: MemoryRegion::new(
                in_space(SPACE, 0x9000_0000 + idx as u64 * 0x10_0000),
                64 * 1024,
            ),
            sweep_cursor: StreamCursor::new(
                MemoryRegion::new(in_space(SPACE, 0x40_0000_0000), 256 << 20),
                64,
            ),
            phase_left: 180_000.0,
            sweeping: false,
        }
    }
}

impl ThreadBehavior for CacheWorker {
    fn next_quantum(&mut self, rng: &mut StdRng) -> Quantum {
        let instr = 130u64;
        self.phase_left -= instr as f64;
        if self.phase_left <= 0.0 {
            self.sweeping = !self.sweeping;
            self.phase_left = if self.sweeping { 60_000.0 } else { 180_000.0 };
        }

        let mut data = Vec::with_capacity(12);
        scratch_traffic(rng, &self.scratch, instr as f64 * 0.25, &mut data);
        let (code, base_cpi) = if self.sweeping {
            // Eviction sweep: stream the cold store (prefetch-covered).
            let lines = prob_round(rng, instr as f64 * 0.030);
            for _ in 0..lines {
                data.push(DataAccess::read(self.sweep_cursor.next_addr()).prefetched());
            }
            (&self.sweep_code, 0.7)
        } else {
            // Lookups: hot hits plus a thin cold-miss tail.
            let hot = prob_round(rng, instr as f64 * 0.02);
            for _ in 0..hot {
                data.push(DataAccess::read(self.hot_store.random_addr(rng)));
            }
            let cold = prob_round(rng, instr as f64 * 0.0012);
            for _ in 0..cold {
                data.push(DataAccess::read(self.cold_store.random_addr(rng)));
            }
            (&self.lookup_code, 0.85)
        };

        let eip = code.sample_eip(rng);
        let branches: Vec<BranchEvent> = (0..4)
            .map(|_| BranchEvent {
                pc: code.sample_eip(rng),
                taken: rng.gen::<f64>() < 0.85,
            })
            .collect();
        Quantum::compute(eip, instr)
            .with_base_cpi(base_cpi)
            .with_data(data)
            .with_fetches(code.fetch_run(eip, 3), instr as f64 / 32.0 / 3.0)
            .with_branches(branches, instr as f64 * 0.15 / 4.0)
    }
}

fn main() {
    // Assemble: 8 workers behind the standard scheduler.
    let workers: Vec<CacheWorker> = (0..8).map(CacheWorker::new).collect();
    let mut workload =
        MultiThreadWorkload::new("webcache", workers, SchedulerConfig::new(1_500.0, 0.05), 42);

    // Profile on the simulated Itanium 2.
    let cfg = ProfileConfig {
        num_intervals: 120,
        ..Default::default()
    };
    println!("profiling the custom web-cache workload ...");
    let profile = ProfileSession::run(&mut workload, &cfg);

    // Analyze and classify.
    let eipvs = profile.eipvs();
    let report = analyze(&eipvs.vectors, &eipvs.cpis, &AnalysisOptions::default());
    let quadrant = fuzzyphase::Thresholds::default().classify(report.cpi_variance, report.re_min);

    let b = profile.mean_breakdown();
    println!(
        "  CPI {:.2} (WORK {:.2} FE {:.2} EXE {:.2} OTHER {:.2}), variance {:.4}",
        b.total(),
        b.work,
        b.fe,
        b.exe,
        b.other,
        report.cpi_variance
    );
    println!(
        "  RE_min {:.3} at k={} -> {} — {}",
        report.re_min,
        report.k_at_min,
        quadrant,
        quadrant.recommendation().name()
    );
    println!(
        "\nDiagnosis: each worker sweeps on its own schedule, so most intervals mix\n         lookup and sweep work — EIPVs explain only part of the CPI variance and\n         the workload sits in {} (high variance, fuzzy phases). Synchronize the\n         sweeps (as ODB-H's lock-step slaves do) and it would move to {}.\n         That diagnosis — not the label — is what the methodology is for.",
        fuzzyphase::Quadrant::III,
        fuzzyphase::Quadrant::IV
    );
}
