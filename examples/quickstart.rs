//! Quickstart: the paper's Table 1 / Figure 1 worked example, then a real
//! benchmark through the full pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fuzzyphase::prelude::*;
use fuzzyphase::regtree::{Dataset, TreeBuilder};

fn main() {
    // --- Part 1: fit the paper's worked example (Table 1 -> Figure 1) ---
    println!("Part 1: the paper's 8-EIPV example");
    let ds = Dataset::paper_example();
    let tree = TreeBuilder::new().max_leaves(4).fit(&ds);
    let root = tree.root().split.expect("root splits");
    println!(
        "  root split: (EIP{}, {}) — the figure's (EIP0, 20)",
        root.feature, root.threshold
    );
    for i in 0..ds.len() {
        println!(
            "  EIPV{} -> chamber mean CPI {:.2} (actual {:.1})",
            i,
            tree.predict(ds.row(i)),
            ds.target(i)
        );
    }

    // --- Part 2: profile a simulated benchmark end to end ---
    println!("\nPart 2: mcf on the simulated Itanium 2");
    let result = AnalysisRequest::new()
        .with_intervals(80) // short demo run
        .run(&BenchmarkSpec::spec("mcf"));
    println!(
        "  CPI {:.2}, variance {:.3}, RE_min {:.3} at k={} -> {} (paper: {})",
        result.report.cpi_mean,
        result.report.cpi_variance,
        result.report.re_min,
        result.report.k_at_min,
        result.quadrant,
        result.expected_quadrant,
    );
    println!(
        "  recommended sampling: {}",
        result.quadrant.recommendation().name()
    );
}
