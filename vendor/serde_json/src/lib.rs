//! Offline vendored subset of the `serde_json` API: renders the vendored
//! serde [`Content`] data model to JSON text and parses JSON text back.
//!
//! Covers `to_string`, `to_string_pretty` and `from_str`. Output
//! conventions follow the real crate where the workspace can observe
//! them: maps render in entry order, floats print with a decimal point,
//! non-finite floats are `null`, pretty output indents by two spaces.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Kept for API compatibility; serialization itself cannot fail.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Kept for API compatibility; serialization itself cannot fail.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, or a shape
/// mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------- writing

fn write_content(out: &mut String, c: &Content, indent: Option<&str>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            write_bracketed(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                write_content(out, &items[i], indent, d);
            });
        }
        Content::Map(entries) => {
            write_bracketed(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, d);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, i, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // Unreachable via the vendored Serialize impls (they map
        // non-finite to Null), but kept for direct Content users.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        // Keep a decimal point so the value reads back as a float,
        // matching serde_json's ryu output ("1.0", not "1").
        use fmt::Write;
        write!(out, "{v:.1}").expect("writing to String cannot fail");
    } else {
        use fmt::Write;
        write!(out, "{v}").expect("writing to String cannot fail");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let first = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // Surrogate pair: expect \uXXXX low half.
                    if !(self.eat_literal("\\u")) {
                        return Err(Error::new("unpaired surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::new("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    first
                };
                out.push(char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?);
            }
            other => return Err(Error::new(format!("invalid escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::HashMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        label: String,
        weights: Vec<(u32, f64)>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        Newtype(u8),
        Pair(u32, f64),
        Config { bits: u32 },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        name: String,
        count: usize,
        ratio: f64,
        flag: bool,
        maybe: Option<u32>,
        none: Option<u32>,
        kinds: Vec<Kind>,
        index: HashMap<u64, u32>,
        inner: Inner,
    }

    fn sample() -> Outer {
        let mut index = HashMap::new();
        index.insert(0xdead_beef_u64, 1);
        index.insert(2, 0);
        Outer {
            name: "odb-c \"quoted\"\n".to_string(),
            count: 42,
            ratio: -0.125,
            flag: true,
            maybe: Some(7),
            none: None,
            kinds: vec![
                Kind::Unit,
                Kind::Newtype(3),
                Kind::Pair(9, 1.5),
                Kind::Config { bits: 14 },
            ],
            index,
            inner: Inner {
                label: "t".into(),
                weights: vec![(1, 0.5), (900, -2.0)],
            },
        }
    }

    #[test]
    fn derived_roundtrip_compact_and_pretty() {
        let v = sample();
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str::<Outer>(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Outer>(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"name\""), "two-space indent");
    }

    #[test]
    fn compact_output_shape() {
        #[derive(Serialize)]
        struct P {
            x: u32,
            y: f64,
        }
        let json = to_string(&P { x: 3, y: 2.0 }).unwrap();
        assert_eq!(json, "{\"x\":3,\"y\":2.0}");
    }

    #[test]
    fn enum_tagging_matches_serde_convention() {
        assert_eq!(to_string(&Kind::Unit).unwrap(), "\"Unit\"");
        assert_eq!(to_string(&Kind::Newtype(3)).unwrap(), "{\"Newtype\":3}");
        assert_eq!(
            to_string(&Kind::Pair(1, 0.5)).unwrap(),
            "{\"Pair\":[1,0.5]}"
        );
        assert_eq!(
            to_string(&Kind::Config { bits: 2 }).unwrap(),
            "{\"Config\":{\"bits\":2}}"
        );
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let s: String = from_str("\"a\\u0041\\n\\\"\\u00e9\"").unwrap();
        assert_eq!(s, "aA\n\"é");
        let v: Vec<f64> = from_str("[1, -2.5, 1e3, 0.0]").unwrap();
        assert_eq!(v, [1.0, -2.5, 1000.0, 0.0]);
        let n: i64 = from_str("-9007199254740993").unwrap();
        assert_eq!(n, -9_007_199_254_740_993);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<Outer>("{}").is_err(), "missing required fields");
    }

    #[test]
    fn unknown_fields_ignored_missing_option_defaults() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct S {
            a: u32,
            b: Option<u32>,
        }
        let v: S = from_str("{\"a\":1,\"zzz\":true}").unwrap();
        assert_eq!(v, S { a: 1, b: None });
    }
}
