//! Offline vendored subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives behind parking_lot's signatures: `lock()`
//! returns the guard directly (no poison `Result`). A poisoned std lock
//! means some thread panicked while holding it; parking_lot ignores
//! poisoning, so this wrapper does too and keeps going with the inner
//! data.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrows the inner value (no locking needed: `&mut self`
    /// proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), [1, 2, 3]);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(0u32);
        let _held = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
