//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the external crates the workspace depends on are vendored as minimal
//! API-compatible implementations (see `vendor/README.md`). This crate
//! reimplements the parts of `rand` 0.8 the workspace uses — and, because
//! every quantitative result in the repository is seed-tuned, it is
//! **stream-compatible** with the real thing:
//!
//! * `StdRng` is ChaCha12 with rand's 64-`u32` block buffering,
//! * `SeedableRng::seed_from_u64` is the PCG32 expansion of rand_core 0.6,
//! * integer `gen_range` is Lemire widening-multiply rejection with
//!   rand 0.8's `sample_single` zone,
//! * float `gen` / `gen_range` use the 53-bit multiply conventions,
//! * `shuffle` is rand's Fisher–Yates with `u32` index sampling.
//!
//! Known-answer tests at the bottom pin the stream against reference
//! vectors computed from an independent implementation.

pub mod distributions;
pub mod rngs;
pub mod seq;

mod chacha;
mod uniform;

pub use distributions::{Distribution, Standard};
pub use uniform::{SampleRange, SampleUniform};

/// Core random-number generation primitives (subset of `rand_core`).
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing generation methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p == 1.0 {
            return true;
        }
        // rand 0.8 Bernoulli: p is scaled to a 64-bit integer threshold.
        let p_int = (p * exp2_64()) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn exp2_64() -> f64 {
    // 2^64 as f64 (exactly representable).
    18_446_744_073_709_551_616.0
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with PCG32 exactly
    /// as rand_core 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Reference vectors computed with an independent Python model of
    /// ChaCha12 + the rand_core PCG32 seed expansion.
    #[test]
    fn seed_expansion_matches_pcg32_reference() {
        // Expansion of seed 0 and 1 (hex of the 32-byte ChaCha key).
        let expect0 = "ecf273f981b5cd4587f0467306ad6cadd0d0a3e33317e767f29bea72d78a7dfe";
        let expect1 = "ead81d725d26104e899c3bf842ce782ebad303da9997d2c2120256ac7366fb1b";
        for (seed, expect) in [(0u64, expect0), (1u64, expect1)] {
            let rng = StdRng::seed_from_u64(seed);
            let hex: String = rng.key_bytes().iter().map(|b| format!("{b:02x}")).collect();
            assert_eq!(hex, expect, "seed {seed}");
        }
    }

    #[test]
    fn stdrng_u32_stream_matches_reference() {
        let mut r = StdRng::seed_from_u64(0);
        let got: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
        assert_eq!(got, [0xcd2c_6f7f, 0xbb2a_3fb2, 0x8e27_697b, 0xc601_7c94]);
    }

    #[test]
    fn stdrng_u64_stream_matches_reference() {
        let mut r = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0xbb2a_3fb2_cd2c_6f7f,
                0xc601_7c94_8e27_697b,
                0x069d_c102_cf31_0a16,
                0x958b_761d_abe5_f6d0,
            ]
        );
        let mut r = StdRng::seed_from_u64(12345);
        let got: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x4e51_9426_885d_d156,
                0xe213_dd9e_ee42_544b,
                0x8bed_72a9_a6e5_1e67,
            ]
        );
    }

    #[test]
    fn stdrng_f64_stream_matches_reference() {
        let mut r = StdRng::seed_from_u64(7);
        let got: Vec<f64> = (0..3).map(|_| r.gen::<f64>()).collect();
        assert_eq!(
            got,
            [
                0.030317360865101395,
                0.3070862833742408,
                0.14264215670077263,
            ]
        );
    }

    #[test]
    fn stdrng_u64_straddles_block_buffer_like_blockrng() {
        // After 63 u32 draws the buffer holds one u32; rand's BlockRng
        // uses it as the low half and refills for the high half.
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..63 {
            r.next_u32();
        }
        assert_eq!(r.next_u64(), 0xce16_f2e5_cd10_30b2);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }
}
