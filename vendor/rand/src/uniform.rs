//! Uniform range sampling, matching rand 0.8's `sample_single` /
//! `sample_single_inclusive` algorithms (Lemire widening-multiply
//! rejection for integers, 53-bit multiply for floats).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument for [`Rng::gen_range`].
///
/// [`Rng::gen_range`]: crate::Rng::gen_range
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_single_inclusive(low, high, rng)
    }
}

/// Widening multiply returning `(high, low)` halves.
trait WideningMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let wide = u64::from(self) * u64::from(other);
        ((wide >> 32) as u32, wide as u32)
    }
}

impl WideningMul for u64 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let wide = u128::from(self) * u128::from(other);
        ((wide >> 64) as u64, wide as u64)
    }
}

impl WideningMul for usize {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let (hi, lo) = (self as u64).wmul(other as u64);
        (hi as usize, lo as usize)
    }
}

/// Draws one full-width value of the working type.
trait DrawLarge: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    fn max_value() -> Self;
}

impl DrawLarge for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
    fn max_value() -> Self {
        u32::MAX
    }
}

impl DrawLarge for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
    fn max_value() -> Self {
        u64::MAX
    }
}

impl DrawLarge for usize {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
    fn max_value() -> Self {
        usize::MAX
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $small:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                let zone = if $small {
                    let unsigned_max: $u_large = <$u_large as DrawLarge>::max_value();
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = <$u_large as DrawLarge>::draw(rng);
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // Wrap-around means the full type range: any value works.
                if range == 0 {
                    return <$u_large as DrawLarge>::draw(rng) as $ty;
                }
                let zone = if $small {
                    let unsigned_max: $u_large = <$u_large as DrawLarge>::max_value();
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = <$u_large as DrawLarge>::draw(rng);
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl! { u8, u8, u32, true }
uniform_int_impl! { u16, u16, u32, true }
uniform_int_impl! { i8, u8, u32, true }
uniform_int_impl! { i16, u16, u32, true }
uniform_int_impl! { u32, u32, u32, false }
uniform_int_impl! { i32, u32, u32, false }
uniform_int_impl! { u64, u64, u64, false }
uniform_int_impl! { i64, u64, u64, false }
uniform_int_impl! { usize, usize, usize, false }
uniform_int_impl! { isize, usize, usize, false }

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_bits:expr, $next:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let scale = high - low;
                loop {
                    // A value in [1, 2): set the exponent to 0 over random
                    // fraction bits, exactly as rand's
                    // `into_float_with_exponent(0)`.
                    let fraction = rng.$next() >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits($exponent_bits | fraction);
                    let res = (value1_2 - 1.0) * scale + low;
                    // rand 0.8.5 rejects the (astronomically rare) rounding
                    // up to `high`.
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // Matches rand's inclusive float sampling closely enough:
                // the closed interval differs from the half-open one only
                // at a zero-measure endpoint.
                let scale = high - low;
                let fraction = rng.$next() >> $bits_to_discard;
                let value1_2 = <$ty>::from_bits($exponent_bits | fraction);
                (value1_2 - 1.0) * scale + low
            }
        }
    };
}

uniform_float_impl! { f64, u64, 12, 0x3FF0_0000_0000_0000u64, next_u64 }
uniform_float_impl! { f32, u32, 9, 0x3F80_0000u32, next_u32 }

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let a = r.gen_range(0..3u32);
            assert!(a < 3);
            let b = r.gen_range(10..20usize);
            assert!((10..20).contains(&b));
            let c = r.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&c));
            let d = r.gen_range(0..=7u64);
            assert!(d <= 7);
            let e = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&e));
        }
    }

    #[test]
    fn int_range_matches_rand_08_reference() {
        // Lemire rejection stream for 0..10 with StdRng seed 21, from an
        // independent Python model of rand 0.8's sample_single.
        let mut r = StdRng::seed_from_u64(21);
        let got: Vec<u32> = (0..12).map(|_| r.gen_range(0..10u32)).collect();
        assert_eq!(got, [8, 2, 9, 7, 3, 4, 8, 9, 4, 1, 8, 6]);
    }

    #[test]
    fn float_range_matches_rand_08_reference() {
        // 53-bit multiply stream for -2.0..3.0 with StdRng seed 5, from
        // the same Python model (hex float literals → exact bits).
        let mut r = StdRng::seed_from_u64(5);
        let got: Vec<f64> = (0..4).map(|_| r.gen_range(-2.0..3.0)).collect();
        let expect: [f64; 4] = [
            -0.2893675458854854, // -0x1.284ff7486862cp-2
            -1.966909592994626,  // -0x1.f787631819c04p+0
            0.2726480308025443,  // 0x1.17310b9e76818p-2
            1.2648128222573103,  // 0x1.43cac5eb28178p+0
        ];
        for (g, e) in got.iter().zip(expect.iter()) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5..5u32);
    }
}
