//! ChaCha12 block function and rand's 64-`u32` block buffering.

/// Number of `u32` results buffered per refill (4 ChaCha blocks), matching
/// `rand_chacha`'s `BlockRng` buffer.
pub const BUF_LEN: usize = 64;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// The ChaCha12 core: key + 64-bit block counter + 64-bit nonce (the DJB
/// variant used by `rand_chacha`; the nonce/stream is always 0 here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
}

impl ChaCha12Core {
    pub fn new(seed: &[u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        Self { key, counter: 0 }
    }

    /// The raw key bytes (test support).
    pub fn key_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, k) in self.key.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&k.to_le_bytes());
        }
        out
    }

    fn block(&self, counter: u64) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        // state[14], state[15]: nonce = 0.
        let mut x = state;
        for _ in 0..6 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (o, s) in x.iter_mut().zip(state.iter()) {
            *o = o.wrapping_add(*s);
        }
        x
    }

    /// Fills `buf` with the next four blocks of keystream.
    pub fn generate(&mut self, buf: &mut [u32; BUF_LEN]) {
        for blk in 0..4 {
            let words = self.block(self.counter);
            buf[blk * 16..blk * 16 + 16].copy_from_slice(&words);
            self.counter = self.counter.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_key_block_matches_reference() {
        // Independent Python model of ChaCha12 (DJB variant, zero
        // key/counter/nonce).
        let core = ChaCha12Core::new(&[0u8; 32]);
        let b = core.block(0);
        assert_eq!(b[0], 0x6a9a_f49b);
        assert_eq!(b[1], 0x53f9_5507);
        assert_eq!(b[2], 0x12ce_1f81);
        assert_eq!(b[3], 0xd583_265f);
        assert_eq!(b[14], 0x2fe8_0b61);
        assert_eq!(b[15], 0xbe26_1341);
    }

    #[test]
    fn counter_advances_per_block() {
        let mut core = ChaCha12Core::new(&[1u8; 32]);
        let mut buf = [0u32; BUF_LEN];
        core.generate(&mut buf);
        assert_eq!(core.counter, 4);
        // Block 1 of the buffer equals a direct block(1) computation.
        assert_eq!(&buf[16..32], &core.block(1)[..]);
    }
}
