//! The standard generator.

use crate::chacha::{ChaCha12Core, BUF_LEN};
use crate::{RngCore, SeedableRng};

/// The rand 0.8 standard generator: ChaCha12 behind a 64-`u32` block
/// buffer, bit-compatible with `rand::rngs::StdRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    core: ChaCha12Core,
    buf: [u32; BUF_LEN],
    /// Next unread index into `buf`; `BUF_LEN` means "empty".
    index: usize,
}

impl StdRng {
    #[inline]
    fn refill(&mut self) {
        self.core.generate(&mut self.buf);
    }

    /// The raw key bytes (test support).
    pub fn key_bytes(&self) -> [u8; 32] {
        self.core.key_bytes()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self {
            core: ChaCha12Core::new(&seed),
            buf: [0; BUF_LEN],
            index: BUF_LEN,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_LEN {
            self.refill();
            self.index = 0;
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // Exactly rand_core's BlockRng::next_u64 over a u32 buffer.
        let index = self.index;
        if index < BUF_LEN - 1 {
            self.index += 2;
            u64::from(self.buf[index]) | (u64::from(self.buf[index + 1]) << 32)
        } else if index >= BUF_LEN {
            self.refill();
            self.index = 2;
            u64::from(self.buf[0]) | (u64::from(self.buf[1]) << 32)
        } else {
            let lo = u64::from(self.buf[BUF_LEN - 1]);
            self.refill();
            self.index = 1;
            lo | (u64::from(self.buf[0]) << 32)
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let n = chunk.len();
            chunk.copy_from_slice(&self.next_u32().to_le_bytes()[..n]);
        }
    }
}
