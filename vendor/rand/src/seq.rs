//! Slice helpers (subset of `rand::seq`).

use crate::{Rng, RngCore};

/// Uniform index below `ubound`, matching rand 0.8's `gen_index`: bounds
/// that fit a `u32` sample with `u32` draws.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Extension methods on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, rand 0.8 order).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SliceRandom;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..100).collect();
        let mut b: Vec<usize> = (0..100).collect();
        a.shuffle(&mut StdRng::seed_from_u64(77));
        b.shuffle(&mut StdRng::seed_from_u64(77));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "seed 77 should move something");
    }

    #[test]
    fn shuffle_matches_rand_08_reference() {
        // Fisher–Yates over 0..100 with StdRng seed 77, computed with an
        // independent Python model of rand 0.8's shuffle (u32 Lemire
        // index sampling, high-to-low swaps).
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(77));
        assert_eq!(
            &v[..16],
            [7, 66, 42, 84, 91, 44, 2, 97, 83, 4, 93, 10, 86, 46, 12, 41]
        );
        assert_eq!(&v[96..], [55, 98, 79, 35]);
    }

    #[test]
    fn choose_on_empty_is_none() {
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut StdRng::seed_from_u64(0)).is_none());
    }
}
