//! The `Standard` distribution (subset of `rand::distributions`).

use crate::RngCore;

/// Types that can produce values of type `T` from a generator.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution, matching rand 0.8's conventions per type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_from_u32 {
    ($($ty:ty),+) => {
        $(impl Distribution<$ty> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        })+
    };
}

macro_rules! standard_from_u64 {
    ($($ty:ty),+) => {
        $(impl Distribution<$ty> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        })+
    };
}

standard_from_u32! { u8, u16, u32, i8, i16, i32 }
standard_from_u64! { u64, i64, usize, isize }

impl Distribution<f64> for Standard {
    /// 53 random bits scaled into `[0, 1)` — rand's `Standard` for `f64`.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl Distribution<f32> for Standard {
    /// 24 random bits scaled into `[0, 1)` — rand's `Standard` for `f32`.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * SCALE
    }
}

impl Distribution<bool> for Standard {
    /// Sign test on the most significant bit, as in rand 0.8.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bool_uses_one_u32_draw() {
        use crate::RngCore;
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let bit = a.gen::<bool>();
        assert_eq!(bit, (b.next_u32() as i32) < 0);
        // Streams stay in lockstep afterwards.
        assert_eq!(a.next_u32(), b.next_u32());
    }
}
