//! Offline vendored subset of the `proptest` API.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use, over the vendored `rand`. Differences from the
//! real crate, chosen for simplicity and reproducibility:
//!
//! * cases are generated from a seed derived from the test name, so runs
//!   are deterministic (set `PROPTEST_CASES` to change the count,
//!   default 32);
//! * failing inputs are reported but not shrunk;
//! * `.proptest-regressions` files are ignored.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — generate another.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 candidates: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_impl {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        })+
    };
}

arbitrary_impl! { u8, u16, u32, u64, usize, i32, i64, bool, f64 }

/// The whole-domain strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_impl {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}

range_strategy_impl! { u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64 }

macro_rules! tuple_strategy_impl {
    ($($($name:ident $idx:tt),+;)+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy_impl! {
    A 0;
    A 0, B 1;
    A 0, B 1, C 2;
    A 0, B 1, C 2, D 3;
    A 0, B 1, C 2, D 3, E 4;
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive collection-size range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

/// Namespace alias so `prop::collection::vec(...)` works as in the real
/// crate's prelude.
pub mod prop {
    pub use crate::collection;
}

/// The case runner behind the [`proptest!`] macro.
pub mod test_runner {
    use super::{Strategy, TestCaseError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    fn fnv1a(data: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in data.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `cases` generated inputs through `test`, panicking on the
    /// first failure with the offending input. Deterministic per `name`.
    pub fn run<S, F>(strategy: S, test: F, name: &str)
    where
        S: Strategy,
        S::Value: Clone + fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let cases: usize = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        let mut rng = StdRng::seed_from_u64(fnv1a(name));
        let mut ran = 0usize;
        let mut rejected = 0usize;
        while ran < cases {
            let input = strategy.generate(&mut rng);
            match test(input.clone()) {
                Ok(()) => ran += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    assert!(
                        rejected <= cases.saturating_mul(64),
                        "{name}: too many prop_assume rejections ({why})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {ran} failed: {msg}\ninput: {input:#?}");
                }
            }
        }
    }
}

/// Everything the tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, Strategy, TestCaseError,
    };
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(why) => write!(f, "rejected: {why}"),
            TestCaseError::Fail(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// Defines property-test functions; see the real proptest for the shape.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::test_runner::run(
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                    stringify!($name),
                );
            }
        )+
    };
}

/// Fails the current case (with an optional message) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 10, "element {}", e);
            }
        }

        #[test]
        fn flat_map_and_assume(n in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0u64..100, n..=n)
        })) {
            prop_assume!(!n.is_empty());
            prop_assert_eq!(n.capacity() >= n.len(), true);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u32..1000, 3..10);
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_panic_with_input() {
        crate::test_runner::run(
            (0u32..10,),
            |(x,)| {
                crate::prop_assert!(x < 5);
                Ok(())
            },
            "failures_panic_with_input",
        );
    }
}
