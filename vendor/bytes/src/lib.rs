//! Offline vendored subset of the `bytes` API.
//!
//! Covers what the trace codec uses: big-endian `get_*`/`put_*` through
//! the [`Buf`]/[`BufMut`] traits, `&[u8]` as a consuming reader, and a
//! `Vec`-backed [`BytesMut`] that freezes into an immutable [`Bytes`].
//! The real crate's refcounted zero-copy splitting is not reproduced —
//! nothing in the workspace slices shared buffers.

use std::ops::Deref;

/// Read access to a buffer of bytes (subset of `bytes::Buf`).
///
/// All multi-byte reads are big-endian, like the real crate's plain
/// `get_*` methods.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads a big-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable buffer (subset of `bytes::BufMut`).
///
/// All multi-byte writes are big-endian, like the real crate's plain
/// `put_*` methods.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// A growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    /// The number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// An immutable byte buffer (subset of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// The number of bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u32(0xDEAD_BEEF);
        b.put_f32(1.5);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 9);
        assert_eq!(frozen[1..5], [0xDE, 0xAD, 0xBE, 0xEF], "big-endian");
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32(), 1.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_reader_advances() {
        let data = [1u8, 2, 3];
        let mut r: &[u8] = &data;
        assert_eq!(r.remaining(), 3);
        r.advance(2);
        assert_eq!(r.chunk(), &[3]);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
