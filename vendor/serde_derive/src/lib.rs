//! Offline vendored `Serialize` / `Deserialize` derives.
//!
//! The real `serde_derive` builds on `syn`/`quote`; neither is available
//! offline, so this crate walks the raw [`proc_macro::TokenStream`] by
//! hand and emits impl source as strings. It supports exactly the shapes
//! this workspace derives on: non-generic structs with named fields and
//! non-generic enums with unit, newtype, tuple and struct variants
//! (externally tagged, like serde's default). `#[serde(...)]` attributes
//! are not supported and none exist in the workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored data-model version).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let source = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    source.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored data-model version).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let source = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    source.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// True for the start of an attribute (`#[...]`); the caller skips the
/// following bracket group.
fn is_attr_start(tt: &TokenTree) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == '#')
}

/// Skips attributes and visibility modifiers starting at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_attr_start(&tokens[i]) {
            i += 2; // '#' + bracket group
        } else if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(
                tokens.get(i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1; // pub(crate) etc.
            }
        } else {
            return i;
        }
    }
}

/// Splits `tokens` on commas that are outside `<...>` (groups already hide
/// their interiors, but angle brackets are bare puncts).
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts field names from the tokens of a named-field braced group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_commas(tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let i = skip_attrs_and_vis(chunk, 0);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            };
            match chunk.get(i + 1) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => panic!("expected `:` after field `{name}`, found {other:?}"),
            }
            name
        })
        .collect()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_top_commas(tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let i = skip_attrs_and_vis(chunk, 0);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let kind = match chunk.get(i + 1) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    let arity = split_top_commas(&inner)
                        .iter()
                        .filter(|c| !c.is_empty())
                        .count();
                    VariantKind::Tuple(arity)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Struct(parse_named_fields(&inner))
                }
                other => panic!("unsupported tokens after variant `{name}`: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generics are not supported for `{name}`");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        other => {
            panic!("expected braced body for `{name}` (tuple structs unsupported), found {other:?}")
        }
    };

    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------- codegen

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_content(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::field(entries, \"{f}\")?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let entries = content.as_map().ok_or_else(|| \
                     ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("f{i}")).collect()
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vn} => \
                     ::serde::Content::Str(::std::string::String::from(\"{vn}\")),"
                ),
                VariantKind::Tuple(arity) => {
                    let binds = bindings(*arity).join(", ");
                    let payload = if *arity == 1 {
                        "::serde::Serialize::to_content(f0)".to_string()
                    } else {
                        let items: String = bindings(*arity)
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b}),"))
                            .collect();
                        format!("::serde::Content::Seq(::std::vec![{items}])")
                    };
                    format!(
                        "{name}::{vn}({binds}) => ::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), {payload})]),"
                    )
                }
                VariantKind::Struct(fields) => {
                    let binds = fields.join(", ");
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_content({f})),"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                          ::serde::Content::Map(::std::vec![{entries}]))]),"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
        })
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok(\
                     {name}::{vn}(::serde::Deserialize::from_content(payload)?)),"
                )),
                VariantKind::Tuple(arity) => {
                    let elems: String = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?,"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let items = payload.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected sequence for {name}::{vn}\"))?;\n\
                             if items.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"wrong tuple arity for {name}::{vn}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({elems}))\n\
                         }}"
                    ))
                }
                VariantKind::Struct(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(entries, \"{f}\")?,"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let entries = payload.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected map for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                         }}"
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match content {{\n\
                     ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(map_entries) if map_entries.len() == 1 => {{\n\
                         let (tag, payload) = &map_entries[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected string or single-entry map for enum {name}\")),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
