//! Offline vendored subset of the `serde` API.
//!
//! Instead of serde's visitor architecture, this vendored stand-in uses a
//! concrete JSON-shaped data model: [`Serialize`] lowers a value to a
//! [`Content`] tree and [`Deserialize`] rebuilds a value from one.
//! `serde_json` (also vendored) renders `Content` to text and parses text
//! back into it. The surface covered is exactly what this workspace uses:
//! derived structs with named fields, derived enums (unit / newtype /
//! tuple / struct variants, externally tagged), the primitive impls
//! below, `Vec`, `Option`, tuples and `HashMap` with integer or string
//! keys.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON value tree.
///
/// Maps preserve insertion order (derived structs insert in field order;
/// `HashMap`s are sorted by key for deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also non-finite floats, as in serde_json).
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Non-integral (or large) numbers.
    F64(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Seq(Vec<Content>),
    /// JSON objects as ordered key/value pairs.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// `Content` serializes and deserializes as itself, so callers can
/// check "is this well-formed JSON?" without committing to a schema —
/// the serve protocol uses this to skip unknown message types from
/// newer protocol versions instead of failing the session.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

/// Serialization / deserialization error: a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the [`Content`] data model.
pub trait Serialize {
    /// The value as a content tree.
    fn to_content(&self) -> Content;
}

/// Rebuilds a value from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Parses the value from a content tree.
    ///
    /// # Errors
    ///
    /// Returns an error when `content` has the wrong shape for `Self`.
    fn from_content(content: &Content) -> Result<Self, Error>;

    /// Called for a struct field absent from the input map. Errors by
    /// default; `Option` overrides this to yield `None`, matching
    /// serde's treatment of optional fields.
    ///
    /// # Errors
    ///
    /// Returns a "missing field" error by default.
    fn from_missing(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// Looks up a struct field in a content map (derive support).
///
/// # Errors
///
/// Propagates the field's own parse error, or `from_missing` if absent.
pub fn field<T: Deserialize>(entries: &[(String, Content)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => T::from_missing(name),
    }
}

fn wrong_kind(expected: &str, got: &Content) -> Error {
    Error::custom(format!("expected {expected}, found {}", got.kind()))
}

// --------------------------------------------------------------- integers

macro_rules! unsigned_impl {
    ($($ty:ty),+) => {
        $(
            impl Serialize for $ty {
                fn to_content(&self) -> Content {
                    Content::U64(u64::from(*self))
                }
            }

            impl Deserialize for $ty {
                fn from_content(content: &Content) -> Result<Self, Error> {
                    let v = match *content {
                        Content::U64(v) => v,
                        Content::I64(v) => {
                            u64::try_from(v).map_err(|_| wrong_kind("unsigned integer", content))?
                        }
                        _ => return Err(wrong_kind("unsigned integer", content)),
                    };
                    <$ty>::try_from(v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($ty))))
                }
            }
        )+
    };
}

unsigned_impl! { u8, u16, u32, u64 }

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, Error> {
        u64::from_content(content).and_then(|v| {
            usize::try_from(v).map_err(|_| Error::custom(format!("{v} out of range for usize")))
        })
    }
}

macro_rules! signed_impl {
    ($($ty:ty),+) => {
        $(
            impl Serialize for $ty {
                fn to_content(&self) -> Content {
                    let v = i64::from(*self);
                    if v < 0 {
                        Content::I64(v)
                    } else {
                        Content::U64(v as u64)
                    }
                }
            }

            impl Deserialize for $ty {
                fn from_content(content: &Content) -> Result<Self, Error> {
                    let v = match *content {
                        Content::I64(v) => v,
                        Content::U64(v) => {
                            i64::try_from(v).map_err(|_| wrong_kind("integer", content))?
                        }
                        _ => return Err(wrong_kind("integer", content)),
                    };
                    <$ty>::try_from(v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($ty))))
                }
            }
        )+
    };
}

signed_impl! { i8, i16, i32, i64 }

// ----------------------------------------------------------------- floats

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        if self.is_finite() {
            Content::F64(*self)
        } else {
            // serde_json serializes non-finite floats as null.
            Content::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match *content {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            _ => Err(wrong_kind("number", content)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        f64::from(*self).to_content()
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match *content {
            Content::Bool(v) => Ok(v),
            _ => Err(wrong_kind("bool", content)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(wrong_kind("string", content)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(wrong_kind("sequence", content)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, Error> {
        // Absent optional fields deserialize to None, as in serde.
        Ok(None)
    }
}

macro_rules! tuple_impl {
    ($($len:literal => ($($idx:tt $name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn to_content(&self) -> Content {
                    Content::Seq(vec![$(self.$idx.to_content()),+])
                }
            }

            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn from_content(content: &Content) -> Result<Self, Error> {
                    let items = content
                        .as_seq()
                        .ok_or_else(|| wrong_kind("sequence", content))?;
                    if items.len() != $len {
                        return Err(Error::custom(format!(
                            "expected a tuple of {} elements, found {}",
                            $len,
                            items.len()
                        )));
                    }
                    Ok(($($name::from_content(&items[$idx])?,)+))
                }
            }
        )+
    };
}

tuple_impl! {
    2 => (0 A, 1 B),
    3 => (0 A, 1 B, 2 C),
    4 => (0 A, 1 B, 2 C, 3 D),
}

// ------------------------------------------------------------------- maps

/// Map keys: JSON objects only have string keys, so integer keys are
/// rendered as decimal strings (as serde_json does).
pub trait MapKey: Sized + Ord {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;

    /// Parses the key back from a JSON object key.
    ///
    /// # Errors
    ///
    /// Returns an error when the string does not parse as `Self`.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! int_key_impl {
    ($($ty:ty),+) => {
        $(impl MapKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error::custom(format!("invalid {} map key `{key}`", stringify!($ty))))
            }
        })+
    };
}

int_key_impl! { u32, u64, usize, i32, i64 }

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Sorted by key: HashMap iteration order is nondeterministic, and
        // every exported artifact in this repository is diffed.
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        Content::Map(
            keys.into_iter()
                .map(|k| (k.to_key(), self[k].to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let entries = content.as_map().ok_or_else(|| wrong_kind("map", content))?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        // Already ordered; emitted as-is.
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let entries = content.as_map().ok_or_else(|| wrong_kind("map", content))?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for v in [0u64, 7, u64::MAX] {
            assert_eq!(u64::from_content(&v.to_content()).unwrap(), v);
        }
        for v in [-3i32, 0, 5] {
            assert_eq!(i32::from_content(&v.to_content()).unwrap(), v);
        }
        for v in [0.0f64, -1.5, 1e300] {
            assert_eq!(f64::from_content(&v.to_content()).unwrap(), v);
        }
        assert_eq!(f64::NAN.to_content(), Content::Null);
        assert!(bool::from_content(&true.to_content()).unwrap());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 1.5f64), (9, -2.0)];
        assert_eq!(Vec::<(u32, f64)>::from_content(&v.to_content()).unwrap(), v);

        let o: Option<u32> = None;
        assert_eq!(o.to_content(), Content::Null);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_missing("whatever").unwrap(),
            None,
            "absent optional fields must default to None"
        );
        assert!(u32::from_missing("req").is_err());
    }

    #[test]
    fn hashmap_sorted_and_roundtrips() {
        let mut m: HashMap<u64, u32> = HashMap::new();
        m.insert(10, 1);
        m.insert(2, 2);
        m.insert(700, 3);
        let c = m.to_content();
        let keys: Vec<&str> = c
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["2", "10", "700"], "numeric sort, not lexicographic");
        assert_eq!(HashMap::<u64, u32>::from_content(&c).unwrap(), m);
    }

    #[test]
    fn btreemap_roundtrips_in_key_order() {
        let mut m: std::collections::BTreeMap<u64, u32> = Default::default();
        m.insert(700, 3);
        m.insert(2, 2);
        m.insert(10, 1);
        let c = m.to_content();
        let keys: Vec<&str> = c
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["2", "10", "700"]);
        assert_eq!(
            std::collections::BTreeMap::<u64, u32>::from_content(&c).unwrap(),
            m
        );
    }
}
