//! Offline vendored subset of the `criterion` API.
//!
//! Supports the benchmark shapes this workspace writes: `bench_function`,
//! `benchmark_group` + `sample_size` + `finish`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is deliberately simple — warm up, time a batch of
//! iterations per sample, report min/mean — with none of the real
//! crate's statistical machinery. A `--filter <substring>` (or bare
//! substring) argument limits which benchmarks run, enough for
//! `cargo bench -- <name>`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (subset of the real enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: one setup per routine call.
    SmallInput,
    /// Large inputs: also one setup per call here.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; a remaining free argument (or
        // `--filter x`) is a name filter, as with the real crate.
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" => {}
                "--filter" => filter = args.next(),
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Self {
            filter,
            sample_size: 60,
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self
            .filter
            .as_ref()
            .is_some_and(|needle| !name.contains(needle.as_str()))
        {
            return self;
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group (name is prefixed).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group, restoring the default sample size.
    pub fn finish(self) {
        self.parent.sample_size = 60;
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-call cost to size the batches.
        let per_call = {
            let start = Instant::now();
            black_box(routine());
            start.elapsed().max(Duration::from_nanos(1))
        };
        let target = Duration::from_millis(2);
        let batch = (target.as_nanos() / per_call.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{name:<40} time: [min {} mean {}] ({} samples)",
            format_duration(*min),
            format_duration(mean),
            self.samples.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a group runner (subset: ignores the
/// `config = ...` form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
        };
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_set_sample_size_and_restore() {
        let mut c = Criterion {
            filter: None,
            sample_size: 60,
        };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("one", |b| {
                b.iter_batched(|| 1u32, |x| x + 1, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.sample_size, 60);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match_me".into()),
            sample_size: 2,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }
}
