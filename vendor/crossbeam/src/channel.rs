//! Offline vendored subset of the `crossbeam-channel` API.
//!
//! Multi-producer multi-consumer FIFO channels with an optional capacity
//! bound, implemented over `Mutex<VecDeque>` + two `Condvar`s. The
//! surface mirrors upstream for everything the workspace calls:
//!
//! - [`bounded`] / [`unbounded`] constructors returning cloneable
//!   [`Sender`] / [`Receiver`] halves;
//! - blocking [`Sender::send`] / [`Receiver::recv`], non-blocking
//!   [`Sender::try_send`] / [`Receiver::try_recv`], and
//!   [`Receiver::recv_timeout`];
//! - disconnect semantics: once all senders are gone a receiver drains
//!   the queue then gets `Disconnected`; once all receivers are gone a
//!   send fails immediately, returning the rejected value.
//!
//! Unlike upstream, `bounded(0)` (rendezvous) is not supported — nothing
//! in the workspace uses it, and a stand-in should not carry untested
//! complexity.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone; the
/// unsent value is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`]: the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
}

/// Creates a bounded channel holding at most `cap` messages.
///
/// # Panics
///
/// Panics if `cap == 0` — zero-capacity rendezvous channels are not part
/// of this stand-in.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
    channel(Some(cap))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel. Cloning adds another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloning adds another consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn is_full(&self, inner: &Inner<T>) -> bool {
        self.cap.is_some_and(|c| inner.queue.len() >= c)
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value back if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            if !self.shared.is_full(&inner) {
                inner.queue.push_back(value);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// `Full` when a bounded channel is at capacity, `Disconnected` when
    /// every receiver is gone; the value rides back in the error.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.shared.is_full(&inner) {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.shared.cap
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Fails only when the channel is empty *and* every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// `Empty` when nothing is queued, `Disconnected` when additionally
    /// every sender is gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receives, blocking at most `timeout`.
    ///
    /// # Errors
    ///
    /// `Timeout` if nothing arrived in time, `Disconnected` when the
    /// channel is empty and every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.shared.cap
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake every blocked receiver so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Wake every blocked sender so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).expect("receiver alive");
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().expect("queued")).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_full_then_drain() {
        let (tx, rx) = bounded(2);
        tx.send(1).expect("space");
        tx.send(2).expect("space");
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).expect("space after drain");
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).expect("space");
        let t = thread::spawn(move || {
            tx.send(2).expect("unblocked by recv");
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().expect("sender thread");
    }

    #[test]
    fn disconnect_on_all_senders_dropped() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(7).expect("receiver alive");
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7), "queued messages drain first");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_on_all_receivers_dropped() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        match tx.try_send(2) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 2),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).expect("receiver alive");
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn recv_timeout_sees_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(15));
            drop(tx);
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Err(RecvTimeoutError::Disconnected)
        );
        t.join().expect("dropper thread");
    }

    #[test]
    fn mpmc_all_items_arrive_exactly_once() {
        let (tx, rx) = bounded(4);
        let mut senders = Vec::new();
        for p in 0..3 {
            let tx = tx.clone();
            senders.push(thread::spawn(move || {
                for i in 0..50 {
                    tx.send(p * 100 + i).expect("receivers alive");
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for s in senders {
            s.join().expect("sender");
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        let mut want: Vec<i32> = (0..3)
            .flat_map(|p| (0..50).map(move |i| p * 100 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    #[should_panic(expected = "rendezvous")]
    fn zero_capacity_rejected() {
        let _ = bounded::<()>(0);
    }

    #[test]
    fn len_and_capacity_reporting() {
        let (tx, rx) = bounded::<u8>(3);
        assert_eq!(tx.capacity(), Some(3));
        assert_eq!(rx.capacity(), Some(3));
        assert!(tx.is_empty() && rx.is_empty());
        tx.send(1).expect("space");
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.len(), 1);
        let (utx, _urx) = unbounded::<u8>();
        assert_eq!(utx.capacity(), None);
    }
}
