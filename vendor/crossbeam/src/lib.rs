//! Offline vendored subset of the `crossbeam` API: scoped threads and
//! MPMC channels.
//!
//! Since Rust 1.63 the standard library has scoped threads, so this
//! stand-in is a thin adapter giving them crossbeam's calling
//! convention: `crossbeam::scope(|s| { s.spawn(|_| ...); })` where the
//! spawn closure receives the scope again (crossbeam passes it so
//! spawned threads can spawn more threads).
//!
//! Panic semantics differ slightly: real crossbeam returns `Err` with
//! the panic payload when a child panics, while `std::thread::scope`
//! resumes the panic on join. Callers here only `.expect()` the result,
//! so both surface as a test/process failure.
//!
//! [`channel`] reimplements the `crossbeam-channel` subset the serve
//! daemon's work queues use: cloneable multi-producer multi-consumer
//! bounded/unbounded channels with blocking, non-blocking and timed
//! receives, built on `Mutex` + `Condvar` rather than the real crate's
//! lock-free ring. Semantics match upstream where the workspace relies
//! on them: a bounded `send` blocks while full, `try_send` reports
//! `Full`, and operations fail with `Disconnected` once every handle on
//! the other side is dropped.

use std::any::Any;

pub mod channel;

/// Scoped-thread types (subset of `crossbeam::thread`).
pub mod thread {
    /// A scope handle passed to [`scope`](super::scope) closures and to
    /// every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        pub(crate) inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, as in
        /// crossbeam, so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }
}

/// Runs `f` with a thread scope; all threads spawned within are joined
/// before this returns.
///
/// # Errors
///
/// Kept for crossbeam API compatibility. Child panics propagate as
/// panics (std semantics) rather than as `Err`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&thread::Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&thread::Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_can_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        let counter_ref = &counter;
        super::scope(|s| {
            for &x in &data {
                s.spawn(move |_| {
                    counter_ref.fetch_add(x, Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
