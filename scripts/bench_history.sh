#!/usr/bin/env bash
# Bench trajectory recorder: appends one JSON line per push — commit
# SHA, UTC timestamp, `nproc`, the regtree stage medians, and the
# daemon's headline serve metrics — to a history file that CI restores
# from a rolling cache and uploads as the `bench-history` artifact.
# The trajectory accumulates across pushes instead of each run
# overwriting the last report.
#
#   scripts/bench_history.sh [HISTORY_FILE] [FRESH_REGTREE] [FRESH_SERVE]
#
# Appending is idempotent per commit: if the last line already carries
# the current SHA (a re-run of the same push), it is replaced rather
# than duplicated.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-bench-history/bench_history.jsonl}"
FRESH_REGTREE="${2:-BENCH_regtree.json}"
FRESH_SERVE="${3:-BENCH_serve.json}"

mkdir -p "$(dirname "$OUT")"

python3 - "$OUT" "$FRESH_REGTREE" "$FRESH_SERVE" <<'PY'
import datetime
import json
import os
import subprocess
import sys

out_path, regtree_path, serve_path = sys.argv[1:4]

sha = os.environ.get("GITHUB_SHA")
if not sha:
    sha = subprocess.check_output(
        ["git", "rev-parse", "HEAD"], text=True
    ).strip()

entry = {
    "sha": sha,
    "utc": datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    ),
    "nproc": os.cpu_count(),
}

try:
    with open(regtree_path) as f:
        report = json.load(f)
    entry["regtree_median_ms"] = {
        s["name"]: s["median_ms"] for s in report.get("stages", [])
    }
except (OSError, ValueError) as e:
    print(f"bench_history: skipping regtree medians: {e}", file=sys.stderr)

try:
    with open(serve_path) as f:
        report = json.load(f)
    entry["serve"] = {
        k: report[k]
        for k in (
            "latency_p99_ms",
            "aggregate_throughput_samples_per_sec",
        )
        if k in report
    }
except (OSError, ValueError) as e:
    print(f"bench_history: skipping serve metrics: {e}", file=sys.stderr)

lines = []
if os.path.exists(out_path):
    with open(out_path) as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]

# Re-runs of the same commit replace its line instead of duplicating it.
if lines:
    try:
        if json.loads(lines[-1]).get("sha") == sha:
            lines.pop()
    except ValueError:
        pass

lines.append(json.dumps(entry, sort_keys=True))
with open(out_path, "w") as f:
    f.write("\n".join(lines) + "\n")

print(f"bench_history: {len(lines)} entries in {out_path}; latest:")
print(lines[-1])
PY
