#!/usr/bin/env bash
# Bench regression gate: compare freshly generated bench reports
# against the baselines committed at HEAD.
#
#   scripts/bench_check.sh [FRESH_SERVE] [FRESH_REGTREE]
#
# Hard failure (exit 1) on a regression beyond THRESHOLD_PCT (default
# 25%) in the metrics stable enough to gate on: the daemon's frame-ack
# p99 and the regression-tree kernel medians (fit_cached, fit_columnar,
# sse_batch, cv_parallel, diff_fit, fit_incremental). A gated stage
# missing from the FRESH report
# is also a hard failure — a silently dropped stage must not pass the
# gate; a stage missing only from the committed baseline is skipped
# (the baseline predates the stage).
# Noisier metrics — aggregate throughput, resume latency, the rescan
# path — only emit GitHub `::warning::` annotations, so a noisy runner
# cannot turn the lane red on its own.
#
# A missing baseline (file not committed at HEAD) skips that file with
# a note rather than failing: the first run on a new branch has nothing
# to compare against.
set -euo pipefail
cd "$(dirname "$0")/.."

FRESH_SERVE="${1:-BENCH_serve.json}"
FRESH_REGTREE="${2:-BENCH_regtree.json}"
THRESHOLD_PCT="${THRESHOLD_PCT:-25}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

status=0

compare() { # fresh-file kind
    local fresh="$1" kind="$2"
    local base="$TMP/$kind.base.json"
    if [ ! -f "$fresh" ]; then
        echo "bench_check: $fresh not found; generate it first" >&2
        status=1
        return
    fi
    if ! git show "HEAD:$(basename "$fresh")" >"$base" 2>/dev/null; then
        echo "bench_check: no committed baseline for $(basename "$fresh"); skipping"
        return
    fi
    python3 - "$fresh" "$base" "$kind" "$THRESHOLD_PCT" <<'PY' || status=1
import json
import sys

fresh_path, base_path, kind, thr = sys.argv[1:5]
thr = float(thr)
with open(fresh_path) as f:
    fresh = json.load(f)
with open(base_path) as f:
    base = json.load(f)


def stage_median(report, name):
    for s in report.get("stages", []):
        if s.get("name") == name:
            return s.get("median_ms")
    return None


# (label, fresh value, baseline value, higher_is_better)
if kind == "serve":
    hard = [
        ("frame-ack latency_p99_ms", fresh.get("latency_p99_ms"),
         base.get("latency_p99_ms"), False),
    ]
    soft = [
        ("aggregate_throughput_samples_per_sec",
         fresh.get("aggregate_throughput_samples_per_sec"),
         base.get("aggregate_throughput_samples_per_sec"), True),
        ("resume_latency_p99_ms", fresh.get("resume_latency_p99_ms"),
         base.get("resume_latency_p99_ms"), False),
    ]
else:
    hard = [
        ("fit_cached median_ms", stage_median(fresh, "fit_cached"),
         stage_median(base, "fit_cached"), False),
        ("fit_columnar median_ms", stage_median(fresh, "fit_columnar"),
         stage_median(base, "fit_columnar"), False),
        ("sse_batch median_ms", stage_median(fresh, "sse_batch"),
         stage_median(base, "sse_batch"), False),
        ("cv_parallel median_ms", stage_median(fresh, "cv_parallel"),
         stage_median(base, "cv_parallel"), False),
        ("diff_fit median_ms", stage_median(fresh, "diff_fit"),
         stage_median(base, "diff_fit"), False),
        ("fit_incremental median_ms", stage_median(fresh, "fit_incremental"),
         stage_median(base, "fit_incremental"), False),
    ]
    soft = [
        ("fit_rescan median_ms", stage_median(fresh, "fit_rescan"),
         stage_median(base, "fit_rescan"), False),
        ("fit_scalar median_ms", stage_median(fresh, "fit_scalar"),
         stage_median(base, "fit_scalar"), False),
        ("sse_scalar median_ms", stage_median(fresh, "sse_scalar"),
         stage_median(base, "sse_scalar"), False),
        ("cv_serial median_ms", stage_median(fresh, "cv_serial"),
         stage_median(base, "cv_serial"), False),
        ("fit_stream_scratch median_ms", stage_median(fresh, "fit_stream_scratch"),
         stage_median(base, "fit_stream_scratch"), False),
    ]


def regression_pct(f, b, higher_is_better):
    """Positive = worse than baseline, as a percentage of baseline."""
    if f is None or b is None or b == 0:
        return None
    return ((b - f) if higher_is_better else (f - b)) / b * 100.0


failed = False
for gating, metrics in ((True, hard), (False, soft)):
    for label, f, b, hib in metrics:
        if f is None:
            # The fresh report must carry every gated stage: a dropped
            # stage is indistinguishable from a silently skipped bench.
            if gating:
                print(f"::error::{kind}: gated metric {label} missing "
                      f"from fresh report {fresh_path}")
                failed = True
            else:
                print(f"::warning::{kind}: soft metric {label} missing "
                      f"from fresh report {fresh_path}")
            continue
        r = regression_pct(f, b, hib)
        if r is None:
            print(f"bench_check: {kind}: {label}: no committed baseline "
                  f"(fresh={f!r} baseline={b!r}); skipping")
            continue
        word = "regression" if r > 0 else "improvement"
        print(f"bench_check: {kind}: {label}: baseline {b:.3f} -> "
              f"fresh {f:.3f} ({abs(r):.1f}% {word})")
        if r > thr:
            if gating:
                print(f"::error::{kind}: {label} regressed {r:.1f}% "
                      f"(threshold {thr:.0f}%)")
                failed = True
            else:
                print(f"::warning::{kind}: {label} regressed {r:.1f}% "
                      f"(soft metric, not gating)")

sys.exit(1 if failed else 0)
PY
}

compare "$FRESH_SERVE" serve
compare "$FRESH_REGTREE" regtree

if [ "$status" -ne 0 ]; then
    echo "bench_check: FAILED (see ::error:: lines above)" >&2
    exit 1
fi
echo "bench_check: OK (no gating metric regressed > ${THRESHOLD_PCT}%)"
