#!/usr/bin/env bash
# Daemon smoke test, four legs:
#
#   1. Throughput: fuzzyphased on an ephemeral port, 4 concurrent
#      loadgen sessions, graceful Shutdown drain.
#   2. Durability: a spooled daemon is SIGKILLed mid-stream between two
#      loadgen phases; the restarted daemon must recover the spools and
#      every session must resume by token and report successfully.
#   3. Sharding (DESIGN.md D11): the same kill in the middle of a
#      4-shard daemon, with the restart running 2 shards — sessions must
#      route, die and resume across a shard-count change.
#   4. Diff (DESIGN.md D14): two archived sessions are diffed offline by
#      the fuzzydiff CLI and again through the recovered daemon's Diff
#      request; the two reports must be byte-identical, and the diffed
#      sessions must still resume afterwards (Diff is read-only).
#
# CI runs this after tier-1; it is also the quickest local end-to-end
# check of the serve stack. Cleanup is trap-based: a failing run leaves
# the spool directory (serve-smoke-spool/) in place as evidence for the
# CI artifact upload, a passing run never leaks it.
set -euo pipefail
cd "$(dirname "$0")/.."

SESSIONS="${SESSIONS:-4}"
SAMPLES="${SAMPLES:-50000}"
OUT="${OUT:-BENCH_serve.json}"
RESUME_OUT="${RESUME_OUT:-BENCH_serve_resume.json}"
SHARD_OUT="${SHARD_OUT:-BENCH_serve_shards.json}"
DIFF_OUT="${DIFF_OUT:-BENCH_serve_diff.json}"
SPOOL="serve-smoke-spool"
LOG="$(mktemp)"
TOKENS="$(mktemp)"
SMOKE_OK=0
cleanup() {
    rm -f "$LOG" "$TOKENS"
    if [ -n "${DAEMON:-}" ] && kill -0 "$DAEMON" 2>/dev/null; then
        kill "$DAEMON" 2>/dev/null || true
    fi
    # The spool survives a failed run (it is the debugging evidence) and
    # never survives a passing one.
    if [ "$SMOKE_OK" = 1 ]; then
        rm -rf "$SPOOL"
    fi
}
trap cleanup EXIT

cargo build --release -p fuzzyphase-serve --bin fuzzyphased \
            --bin fuzzydiff -p fuzzyphase-bench --bin loadgen

DAEMON=""
ADDR=""

# start_daemon [extra flags...] — binds an ephemeral port (--port 0)
# and waits for the resolved address on stdout.
start_daemon() {
    : >"$LOG"
    ./target/release/fuzzyphased --port 0 "$@" </dev/null >"$LOG" 2>&1 &
    DAEMON=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's/^fuzzyphased listening on //p' "$LOG" | head -n1)"
        [ -n "$ADDR" ] && break
        if ! kill -0 "$DAEMON" 2>/dev/null; then
            echo "serve_smoke: daemon died before binding:" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$ADDR" ]; then
        echo "serve_smoke: daemon never printed its address" >&2
        cat "$LOG" >&2
        kill "$DAEMON" 2>/dev/null || true
        exit 1
    fi
    echo "serve_smoke: daemon up on $ADDR (pid $DAEMON)"
}

# wait_daemon_exit — the Shutdown request must drain to a clean exit.
wait_daemon_exit() {
    for _ in $(seq 1 100); do
        if ! kill -0 "$DAEMON" 2>/dev/null; then
            break
        fi
        sleep 0.1
    done
    if kill -0 "$DAEMON" 2>/dev/null; then
        echo "serve_smoke: daemon ignored Shutdown; killing" >&2
        cat "$LOG" >&2
        kill "$DAEMON"
        exit 1
    fi
    wait "$DAEMON" || {
        echo "serve_smoke: daemon exited non-zero:" >&2
        cat "$LOG" >&2
        exit 1
    }
}

# ---- leg 1: concurrent sessions + graceful Shutdown drain -----------

start_daemon

# Concurrent sessions + final admin Shutdown; fails if any session's
# final report is missing.
./target/release/loadgen --addr "$ADDR" --sessions "$SESSIONS" \
    --samples "$SAMPLES" --refit-every 50 --out "$OUT" --shutdown

wait_daemon_exit
grep -q '"all_reports_ok": true' "$OUT"
echo "serve_smoke: OK ($SESSIONS sessions, reports in $OUT)"

# ---- leg 2: SIGKILL the daemon mid-stream, restart, resume ----------

rm -rf "$SPOOL"
start_daemon --spool-dir "$SPOOL" --fsync-every 1

# Phase one streams 10 durable frames per session and walks away
# without finishing, leaving resume tokens behind.
./target/release/loadgen --addr "$ADDR" --sessions 2 --samples 20000 \
    --batch 500 --spv 50 --restart-after 10 --phase first --tokens "$TOKENS"

# The crash: no drain, no goodbye.
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
if [ -z "$(ls -A "$SPOOL" 2>/dev/null)" ]; then
    echo "serve_smoke: SIGKILL left no spools behind" >&2
    exit 1
fi

start_daemon --spool-dir "$SPOOL" --fsync-every 1

# Phase two resumes every session by token, streams the remainder and
# expects full reports (bit-identity is pinned by the serve crate's
# recovery tests; the smoke checks the operational loop end to end).
./target/release/loadgen --addr "$ADDR" --sessions 2 --samples 20000 \
    --batch 500 --spv 50 --phase resume --tokens "$TOKENS" \
    --out "$RESUME_OUT" --shutdown

wait_daemon_exit
grep -q '"all_reports_ok": true' "$RESUME_OUT"
grep -q '"sessions_resumed": 2' "$RESUME_OUT"
echo "serve_smoke: OK (kill-and-resume leg, reports in $RESUME_OUT)"

# ---- leg 3: SIGKILL a 4-shard daemon, restart with 2 shards ---------

rm -rf "$SPOOL"
start_daemon --shards 4 --spool-dir "$SPOOL" --fsync-every 1

# Three sessions route across the shards by token hash; ten durable
# frames each, no Finish.
./target/release/loadgen --addr "$ADDR" --sessions 3 --samples 20000 \
    --batch 500 --spv 50 --restart-after 10 --phase first --tokens "$TOKENS"

kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
if ! ls -d "$SPOOL"/shard-* >/dev/null 2>&1; then
    echo "serve_smoke: 4-shard daemon left no shard-NNN spool dirs" >&2
    exit 1
fi

# Restarting with a different shard count must still recover every
# session: the scan is layout-agnostic and resumes reopen in place.
start_daemon --shards 2 --spool-dir "$SPOOL" --fsync-every 1

./target/release/loadgen --addr "$ADDR" --sessions 3 --samples 20000 \
    --batch 500 --spv 50 --phase resume --tokens "$TOKENS" \
    --out "$SHARD_OUT" --shutdown

wait_daemon_exit
grep -q '"all_reports_ok": true' "$SHARD_OUT"
grep -q '"sessions_resumed": 3' "$SHARD_OUT"
echo "serve_smoke: OK (sharded kill-and-resume leg, reports in $SHARD_OUT)"

# ---- leg 4: daemon Diff reply == offline fuzzydiff, byte for byte ----

rm -rf "$SPOOL"
start_daemon --spool-dir "$SPOOL" --fsync-every 1

# Two sessions stream ten durable frames each and walk away without
# finishing — their spools are the two sides of the diff.
./target/release/loadgen --addr "$ADDR" --sessions 2 --samples 20000 \
    --batch 500 --spv 50 --restart-after 10 --phase first --tokens "$TOKENS"

kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true

TOK_A="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))[0]["token"])' "$TOKENS")"
TOK_B="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))[1]["token"])' "$TOKENS")"

# Ground truth: the offline CLI replays the spools directly.
OFFLINE_DIFF="$(./target/release/fuzzydiff "$SPOOL/$TOK_A" "$SPOOL/$TOK_B")"

# The restarted daemon recovers the same spools and serves the same
# diff over the wire; the reply must match the offline bytes exactly.
start_daemon --spool-dir "$SPOOL" --fsync-every 1
DAEMON_DIFF="$(./target/release/fuzzydiff --connect "$ADDR" "$TOK_A" "$TOK_B")"

if [ "$OFFLINE_DIFF" != "$DAEMON_DIFF" ]; then
    echo "serve_smoke: daemon Diff reply differs from offline fuzzydiff" >&2
    diff <(printf '%s\n' "$OFFLINE_DIFF") <(printf '%s\n' "$DAEMON_DIFF") >&2 || true
    exit 1
fi

# Diff is read-only: the very sessions just diffed must still resume by
# token and finish their reports.
./target/release/loadgen --addr "$ADDR" --sessions 2 --samples 20000 \
    --batch 500 --spv 50 --phase resume --tokens "$TOKENS" \
    --out "$DIFF_OUT" --shutdown

wait_daemon_exit
grep -q '"all_reports_ok": true' "$DIFF_OUT"
grep -q '"sessions_resumed": 2' "$DIFF_OUT"
echo "serve_smoke: OK (diff leg, daemon reply == offline CLI, reports in $DIFF_OUT)"

SMOKE_OK=1
