#!/usr/bin/env bash
# Daemon smoke test: start fuzzyphased on an ephemeral port, drive it
# with 4 concurrent loadgen sessions, ask it to shut down, and check it
# drains and exits cleanly. CI runs this after tier-1; it is also the
# quickest local end-to-end check of the serve stack.
set -euo pipefail
cd "$(dirname "$0")/.."

SESSIONS="${SESSIONS:-4}"
SAMPLES="${SAMPLES:-50000}"
OUT="${OUT:-BENCH_serve.json}"
LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

cargo build --release -p fuzzyphase-serve --bin fuzzyphased \
            -p fuzzyphase-bench --bin loadgen

# --port 0 binds an ephemeral port; the daemon prints the resolved
# address on stdout before serving.
./target/release/fuzzyphased --port 0 </dev/null >"$LOG" 2>&1 &
DAEMON=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^fuzzyphased listening on //p' "$LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    if ! kill -0 "$DAEMON" 2>/dev/null; then
        echo "serve_smoke: daemon died before binding:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve_smoke: daemon never printed its address" >&2
    cat "$LOG" >&2
    kill "$DAEMON" 2>/dev/null || true
    exit 1
fi
echo "serve_smoke: daemon up on $ADDR (pid $DAEMON)"

# Concurrent sessions + final admin Shutdown; fails if any session's
# final report is missing.
./target/release/loadgen --addr "$ADDR" --sessions "$SESSIONS" \
    --samples "$SAMPLES" --refit-every 50 --out "$OUT" --shutdown

# The Shutdown request must drain the daemon to a clean exit.
for _ in $(seq 1 100); do
    if ! kill -0 "$DAEMON" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -0 "$DAEMON" 2>/dev/null; then
    echo "serve_smoke: daemon ignored Shutdown; killing" >&2
    cat "$LOG" >&2
    kill "$DAEMON"
    exit 1
fi
wait "$DAEMON" || {
    echo "serve_smoke: daemon exited non-zero:" >&2
    cat "$LOG" >&2
    exit 1
}

grep -q '"all_reports_ok": true' "$OUT"
echo "serve_smoke: OK ($SESSIONS sessions, reports in $OUT)"
