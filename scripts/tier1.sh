#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite.
# This is the gate every PR must keep green (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace

# Determinism & invariant lint (DESIGN.md D8): new findings or stale
# baseline entries fail the gate.
cargo run -q --release -p fuzzylint -- --workspace

# Daemon smoke (DESIGN.md D9/D10): fuzzyphased on an ephemeral port, 4
# concurrent loadgen sessions and a graceful Shutdown drain, then a
# durability leg that SIGKILLs a spooled daemon mid-stream and resumes
# every session against the restarted one.
./scripts/serve_smoke.sh
