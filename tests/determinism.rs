//! Reproducibility: every stochastic component is a pure function of its
//! seed, end to end.

use fuzzyphase::prelude::*;

fn cfg(seed: u64) -> AnalysisRequest {
    AnalysisRequest::new()
        .with_intervals(20)
        .with_warmup(4)
        .with_seed(seed)
}

#[test]
fn same_seed_same_everything() {
    let a = cfg(1).run(&BenchmarkSpec::odb_h(13));
    let b = cfg(1).run(&BenchmarkSpec::odb_h(13));
    assert_eq!(a.profile, b.profile);
    assert_eq!(a.report, b.report);
    assert_eq!(a.quadrant, b.quadrant);
}

#[test]
fn different_seed_different_samples_same_shape() {
    let a = cfg(1).run(&BenchmarkSpec::spec("mcf"));
    let b = cfg(2).run(&BenchmarkSpec::spec("mcf"));
    assert_ne!(a.profile.samples, b.profile.samples);
    // The *character* is seed-independent.
    assert_eq!(a.quadrant, b.quadrant);
    assert!((a.report.cpi_mean - b.report.cpi_mean).abs() < 0.4);
}

#[test]
fn suite_parallelism_does_not_change_results() {
    let specs = vec![
        BenchmarkSpec::spec("gzip"),
        BenchmarkSpec::spec("art"),
        BenchmarkSpec::odb_h(8),
    ];
    let c1 = cfg(5).with_workers(WorkerBudget::suite_only(1));
    let c3 = cfg(5).with_workers(WorkerBudget { suite: 3, fold: 2 });
    let serial = c1.run_suite(&specs);
    let parallel = c3.run_suite(&specs);
    for (a, b) in serial.benchmarks.iter().zip(&parallel.benchmarks) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.report, b.report);
    }
}

#[test]
fn workloads_are_deterministic_generators() {
    use fuzzyphase::workload::Workload;
    for spec in [
        BenchmarkSpec::odb_c(),
        BenchmarkSpec::sjas(),
        BenchmarkSpec::odb_h(18),
        BenchmarkSpec::spec("gcc"),
    ] {
        let mut a = spec.build(9, None);
        let mut b = spec.build(9, None);
        for _ in 0..500 {
            assert_eq!(a.next_event(), b.next_event(), "{}", spec.name());
        }
    }
}

#[test]
fn cross_validation_depends_only_on_seed() {
    use fuzzyphase::regtree::{cross_validate, Dataset};
    use fuzzyphase::stats::SparseVec;
    let rows: Vec<SparseVec> = (0..60)
        .map(|i| SparseVec::from_pairs([((i % 6) as u32, 10.0 + i as f64)]))
        .collect();
    let ys: Vec<f64> = (0..60).map(|i| 1.0 + (i % 6) as f64 * 0.2).collect();
    let ds = Dataset::new(rows, ys);
    assert_eq!(cross_validate(&ds, 3), cross_validate(&ds, 3));
    assert_ne!(cross_validate(&ds, 3).re, cross_validate(&ds, 4).re);
}
