//! Cross-crate integration: workload → arch → profiler → regtree →
//! quadrant, exercised through the public `fuzzyphase` API.

use fuzzyphase::prelude::*;

fn short_cfg(n: usize) -> AnalysisRequest {
    AnalysisRequest::new().with_intervals(n).with_warmup(6)
}

#[test]
fn profile_data_is_internally_consistent() {
    let r = short_cfg(30).run(&BenchmarkSpec::spec("twolf"));
    let p = &r.profile;
    // One EIPV per interval, samples_per_interval samples each.
    let spv = (p.interval_len / p.period) as usize;
    assert_eq!(p.samples.len(), p.intervals.len() * spv);
    // Interval CPI equals the mean of its samples' CPIs (same cycle span).
    for (i, ivl) in p.intervals.iter().enumerate() {
        let chunk = &p.samples[i * spv..(i + 1) * spv];
        let mean = chunk.iter().map(|s| s.cpi).sum::<f64>() / spv as f64;
        assert!((mean - ivl.cpi).abs() < 0.15, "interval {i}");
    }
    // Totals line up with interval means.
    let overall = p.total_cycles as f64 / p.total_instructions as f64;
    assert!((overall - p.mean_cpi()).abs() < 0.1);
}

#[test]
fn eipv_vectors_conserve_sample_mass() {
    let r = short_cfg(25).run(&BenchmarkSpec::odb_h(8));
    let eipvs = r.profile.eipvs();
    let spv = (r.profile.interval_len / r.profile.period) as f64;
    for v in &eipvs.vectors {
        assert_eq!(v.sum(), spv, "every vector holds exactly {spv} samples");
    }
    assert_eq!(eipvs.vectors.len(), r.profile.intervals.len());
}

#[test]
fn per_thread_eipvs_are_thread_pure() {
    let r = short_cfg(20).run(&BenchmarkSpec::odb_c());
    let per_thread = r.profile.eipvs_per_thread();
    assert!(!per_thread.vector_threads.is_empty());
    // Thread ids must be non-decreasing groups (grouped construction).
    let mut seen = std::collections::HashSet::new();
    let mut last = None;
    for &t in &per_thread.vector_threads {
        if last != Some(t) {
            assert!(seen.insert(t), "thread {t} appears in two separate runs");
            last = Some(t);
        }
    }
}

#[test]
fn report_quadrant_consistent_with_thresholds() {
    let cfg = short_cfg(30);
    for name in ["gzip", "mcf", "gcc"] {
        let r = cfg.run(&BenchmarkSpec::spec(name));
        let expect = cfg
            .thresholds()
            .classify(r.report.cpi_variance, r.report.re_min);
        assert_eq!(r.quadrant, expect, "{name}");
    }
}

#[test]
fn sampler_rate_follows_benchmark_spec() {
    // SjAS is profiled at the 10x rate (§3.1), giving 10x the samples.
    let cfg = short_cfg(12);
    let sjas = cfg.run(&BenchmarkSpec::sjas());
    let oltp = cfg.run(&BenchmarkSpec::odb_c());
    assert_eq!(sjas.profile.period * 10, oltp.profile.period);
    assert_eq!(sjas.profile.samples.len(), 10 * oltp.profile.samples.len());
}

#[test]
fn breakdown_components_cover_cpi() {
    let r = short_cfg(25).run(&BenchmarkSpec::odb_h(13));
    for ivl in &r.profile.intervals {
        let total = ivl.breakdown.total();
        // Context-switch cycles land in no quantum, so breakdown can run
        // slightly under interval CPI, never meaningfully over.
        assert!(total <= ivl.cpi + 0.02);
        assert!(
            total >= ivl.cpi * 0.9,
            "breakdown {total} vs cpi {}",
            ivl.cpi
        );
        assert!(ivl.breakdown.work > 0.0);
    }
}

#[test]
fn suite_subset_runs_in_parallel_and_ordered() {
    let specs = vec![
        BenchmarkSpec::spec("gzip"),
        BenchmarkSpec::spec("swim"),
        BenchmarkSpec::spec("wupwise"),
        BenchmarkSpec::spec("gcc"),
    ];
    let cfg = short_cfg(25).with_workers(WorkerBudget { suite: 4, fold: 1 });
    let suite = cfg.run_suite(&specs);
    let names: Vec<&str> = suite.benchmarks.iter().map(|b| b.name.as_str()).collect();
    assert_eq!(names, vec!["gzip", "swim", "wupwise", "gcc"]);
    // Each quadrant matches the per-benchmark expectation at this length.
    assert_eq!(suite.quadrant_counts().iter().sum::<usize>(), 4);
}

#[test]
fn kmeans_baseline_never_beats_trees_substantially() {
    // §4.6: CPI drives tree splits but not k-means clusters, so across
    // workload types the tree's explained variance dominates.
    let cfg = short_cfg(40);
    for (q, _) in [(13u8, ()), (18, ())] {
        let r = cfg.run(&BenchmarkSpec::odb_h(q));
        let eipvs = r.profile.eipvs();
        let km = fuzzyphase::cluster::kmeans_re_curve(
            &eipvs.vectors,
            &eipvs.cpis,
            &[1, 2, 4, 8, 16],
            15,
            10,
            7,
        );
        assert!(
            r.report.explained_variance >= km.explained_variance() - 0.1,
            "q{q}: tree {} vs kmeans {}",
            r.report.explained_variance,
            km.explained_variance()
        );
    }
}
