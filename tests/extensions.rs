//! Integration coverage for the beyond-the-paper extensions: full-profile
//! (BBV-style) vectors, phase-change detectors, online CPI predictors,
//! and the SMP bus model.

use fuzzyphase::arch::BusConfig;
use fuzzyphase::cluster::{BranchCountDetector, PhaseDetector, SignatureDetector, VectorDetector};
use fuzzyphase::prelude::*;
use fuzzyphase::profiler::SmpProfileSession;
use fuzzyphase::sampling::{score_predictor, LastValue, TablePredictor};
use fuzzyphase::workload::spec::spec_workload;
use fuzzyphase::workload::Workload;

fn profile_full(name: &str, n: usize) -> ProfileData {
    let mut w = spec_workload(name, 7);
    let cfg = ProfileConfig {
        num_intervals: n,
        warmup_intervals: 5,
        collect_full_profile: true,
        ..Default::default()
    };
    ProfileSession::run(&mut w, &cfg)
}

#[test]
fn full_profile_vectors_cover_all_instructions() {
    let data = profile_full("mcf", 20);
    assert_eq!(data.full_vectors.len(), data.intervals.len());
    for v in &data.full_vectors {
        // Instruction-weighted mass equals the interval length (within the
        // quantum-boundary slack at the edges).
        let mass = v.sum();
        assert!(
            (mass - data.interval_len as f64).abs() < 1_500.0,
            "interval mass {mass}"
        );
    }
}

#[test]
fn full_profile_no_less_predictive_than_sampled() {
    // §3.3: full profiling can only add information for a predictable
    // workload.
    let data = profile_full("mcf", 60);
    let sampled = analyze(
        &data.eipvs().vectors,
        &data.eipvs().cpis,
        &AnalysisOptions::default(),
    );
    let full = data.full_profile();
    let full_rep = analyze(&full.vectors, &full.cpis, &AnalysisOptions::default());
    assert!(
        full_rep.re_min <= sampled.re_min + 0.05,
        "full {} vs sampled {}",
        full_rep.re_min,
        sampled.re_min
    );
}

#[test]
#[should_panic(expected = "collect_full_profile")]
fn full_profile_requires_opt_in() {
    let mut w = spec_workload("gzip", 1);
    let cfg = ProfileConfig {
        num_intervals: 5,
        warmup_intervals: 2,
        ..Default::default()
    };
    let data = ProfileSession::run(&mut w, &cfg);
    let _ = data.full_profile();
}

#[test]
fn detectors_fire_more_on_phased_than_flat_workloads() {
    let phased = profile_full("mcf", 40);
    let flat = profile_full("gzip", 40);
    for det in [
        &SignatureDetector::default() as &dyn PhaseDetector,
        &VectorDetector::default(),
        &BranchCountDetector::default(),
    ] {
        let count = |d: &ProfileData| {
            let pki: Vec<f64> = d.intervals.iter().map(|i| i.branch_pki).collect();
            det.detect(&d.full_vectors, &pki)
                .iter()
                .filter(|&&f| f)
                .count()
        };
        let (p, f) = (count(&phased), count(&flat));
        assert!(p > f, "{}: phased {p} <= flat {f}", det.name());
        assert_eq!(f, 0, "{} must stay quiet on gzip", det.name());
    }
}

#[test]
fn table_predictor_wins_on_strong_phases() {
    let data = profile_full("art", 80);
    let cpis = data.interval_cpis();
    let lo = cpis.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = cpis.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-9;
    let table = score_predictor(&mut TablePredictor::new(3, 8, lo, hi), &cpis);
    let last = score_predictor(&mut LastValue::new(), &cpis);
    assert!(
        table.mean_relative_error < last.mean_relative_error,
        "table {} vs last-value {}",
        table.mean_relative_error,
        last.mean_relative_error
    );
}

#[test]
fn smp_bus_contention_is_selective() {
    // Memory-bound swim suffers from neighbours; compute-bound gzip does
    // not (§9's "system level features" point).
    let cfg = ProfileConfig {
        num_intervals: 20,
        warmup_intervals: 4,
        ..Default::default()
    };
    let run = |monitored: &str, co: usize| {
        let mut ws: Vec<Box<dyn Workload>> = vec![Box::new(spec_workload(monitored, 3))];
        for i in 0..co {
            ws.push(Box::new(spec_workload("swim", 50 + i as u64)));
        }
        SmpProfileSession::run(&mut ws, &cfg, BusConfig::default()).mean_cpi()
    };
    let swim_delta = run("swim", 3) / run("swim", 0);
    let gzip_delta = run("gzip", 3) / run("gzip", 0);
    assert!(swim_delta > 1.05, "swim inflation {swim_delta}");
    assert!(gzip_delta < 1.03, "gzip inflation {gzip_delta}");
    assert!(swim_delta > gzip_delta);
}
