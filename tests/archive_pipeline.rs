//! The collection/analysis split (§3): profile once, archive the samples,
//! and reproduce the analysis from the archive alone.

use fuzzyphase::cluster::{choose_k_bic, project};
use fuzzyphase::prelude::*;
use fuzzyphase::profiler::{
    load_trace, read_samples, save_trace, write_samples, write_samples_v2, EipvData,
};
use fuzzyphase::workload::spec::spec_workload;

fn profile(name: &str, n: usize) -> ProfileData {
    let mut w = spec_workload(name, 11);
    let cfg = ProfileConfig {
        num_intervals: n,
        warmup_intervals: 5,
        ..Default::default()
    };
    ProfileSession::run(&mut w, &cfg)
}

#[test]
fn binary_archive_reproduces_the_analysis() {
    let data = profile("mcf", 60);
    let direct = analyze(
        &data.eipvs().vectors,
        &data.eipvs().cpis,
        &AnalysisOptions::default(),
    );

    // Archive, reload, rebuild EIPVs from the raw samples.
    let bytes = write_samples(&data.samples);
    let samples = read_samples(&bytes).expect("decode");
    let spv = (data.interval_len / data.period) as usize;
    let rebuilt = EipvData::from_samples(&samples, spv);
    let from_archive = analyze(&rebuilt.vectors, &rebuilt.cpis, &AnalysisOptions::default());

    // CPI goes through f32 in the codec: structure identical, numbers
    // equal to f32 precision.
    assert_eq!(from_archive.num_vectors, direct.num_vectors);
    assert_eq!(from_archive.num_features, direct.num_features);
    assert!((from_archive.re_min - direct.re_min).abs() < 1e-3);
    assert!((from_archive.cpi_variance - direct.cpi_variance).abs() < 1e-4);
}

#[test]
fn v2_archive_reproduces_the_analysis_bit_for_bit() {
    // The v2 codec carries CPI as f64, so — unlike the f32 v1 check
    // above — the archived analysis is *exactly* the direct one.
    let data = profile("mcf", 60);
    let direct = analyze(
        &data.eipvs().vectors,
        &data.eipvs().cpis,
        &AnalysisOptions::default(),
    );

    let bytes = write_samples_v2(&data.samples);
    let samples = read_samples(&bytes).expect("decode");
    let spv = (data.interval_len / data.period) as usize;
    let rebuilt = EipvData::from_samples(&samples, spv);
    let from_archive = analyze(&rebuilt.vectors, &rebuilt.cpis, &AnalysisOptions::default());

    assert_eq!(from_archive, direct);
    assert_eq!(
        from_archive.cpi_variance.to_bits(),
        direct.cpi_variance.to_bits()
    );
    assert_eq!(from_archive.re_min.to_bits(), direct.re_min.to_bits());
    for (a, b) in from_archive.re_curve.iter().zip(&direct.re_curve) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn trace_files_roundtrip_on_disk() {
    let data = profile("gzip", 20);
    let dir = std::env::temp_dir().join("fuzzyphase-archive-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("gzip.fzph");
    save_trace(&data.samples, &path).expect("save");
    let loaded = load_trace(&path).expect("load");
    assert_eq!(loaded.len(), data.samples.len());
    for (a, b) in loaded.iter().zip(&data.samples) {
        assert_eq!(a.eip, b.eip);
        assert_eq!(a.thread, b.thread);
        assert!((a.cpi - b.cpi).abs() < 1e-6);
    }
    // The binary trace is far smaller than the JSON profile archive.
    let json_len = serde_json::to_string(&data.samples).expect("json").len();
    let bin_len = std::fs::metadata(&path).expect("meta").len() as usize;
    assert!(bin_len * 3 < json_len, "bin {bin_len} vs json {json_len}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bic_chooses_sane_k_for_phased_workload() {
    // mcf has two phases; SimPoint's BIC selection should land on a small
    // cluster count, not the maximum offered.
    let data = profile("mcf", 60);
    let eipvs = data.eipvs();
    let points = project(&eipvs.vectors, 15, 7);
    let (k, clustering) = choose_k_bic(&points, &[1, 2, 3, 4, 6, 8, 12, 20], 0.9, 7);
    assert!((2..=8).contains(&k), "chose k={k}");
    assert_eq!(clustering.num_clusters(), k);
    // The chosen clustering should separate CPI decently: weighted
    // within-cluster CPI variance well below total variance.
    let total_var = fuzzyphase::stats::variance(&eipvs.cpis);
    let members = clustering.members();
    let mut within = 0.0;
    for m in &members {
        if m.is_empty() {
            continue;
        }
        let cpis: Vec<f64> = m.iter().map(|&i| eipvs.cpis[i]).collect();
        within += fuzzyphase::stats::variance(&cpis) * m.len() as f64;
    }
    within /= eipvs.cpis.len() as f64;
    assert!(
        within < total_var * 0.5,
        "within {within} vs total {total_var}"
    );
}
