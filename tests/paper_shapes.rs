//! The paper's headline results must hold in the reproduction, at
//! moderate (CI-friendly) run lengths.

use fuzzyphase::prelude::*;

fn cfg(n: usize) -> AnalysisRequest {
    AnalysisRequest::new().with_intervals(n)
}

/// §5 + Figure 2: ODB-C — flat CPI (variance ≈ 0.01 or below), EIPVs
/// useless (RE ≥ ~1), L3-dominated EXE > 50 %, Q-I.
#[test]
fn odb_c_headline() {
    let r = cfg(120).run(&BenchmarkSpec::odb_c());
    assert!(
        r.report.cpi_variance <= 0.012,
        "variance {}",
        r.report.cpi_variance
    );
    assert!(r.report.re_min > 0.8, "RE_min {}", r.report.re_min);
    assert!(
        r.report.re_asymptote > 1.0,
        "RE should rise above 1 with k (asymptote {})",
        r.report.re_asymptote
    );
    let b = r.profile.mean_breakdown();
    assert!(b.exe_fraction() > 0.5, "EXE fraction {}", b.exe_fraction());
    assert_eq!(r.quadrant, Quadrant::I);
    // Huge flat code footprint: thousands of unique EIPs from 12K samples.
    assert!(
        r.profile.unique_eips() > 5_000,
        "{} EIPs",
        r.profile.unique_eips()
    );
}

/// §5 + Figure 2: SjAS — ~20 % explainable, minimum RE around 0.75-0.85
/// at small k, EXE 30-60 %, Q-III, even more unique EIPs than ODB-C.
#[test]
fn sjas_headline() {
    let r = cfg(120).run(&BenchmarkSpec::sjas());
    assert!(
        r.report.cpi_variance > 0.012,
        "variance {}",
        r.report.cpi_variance
    );
    assert!(
        (0.6..0.95).contains(&r.report.re_min),
        "RE_min {} (paper ~0.8)",
        r.report.re_min
    );
    assert!(r.report.k_at_min <= 8, "k at min {}", r.report.k_at_min);
    assert_eq!(r.quadrant, Quadrant::III);
}

/// §6.1 + Figure 8: Q13 — strong EIP↔CPI relationship: ≥ 85 % of CPI
/// variance explained with ≤ ~12 chambers.
#[test]
fn q13_headline() {
    let r = cfg(120).run(&BenchmarkSpec::odb_h(13));
    assert!(
        r.report.explained_variance >= 0.85,
        "explained {}",
        r.report.explained_variance
    );
    assert!(r.report.k_opt <= 14, "k_opt {}", r.report.k_opt);
    assert_eq!(r.quadrant, Quadrant::IV);
}

/// §6.2 + Figure 10: Q18 — same code shape as Q13 but index-scan driven:
/// high variance, RE stays high.
#[test]
fn q18_headline() {
    let r = cfg(120).run(&BenchmarkSpec::odb_h(18));
    assert!(
        r.report.cpi_variance > 0.012,
        "variance {}",
        r.report.cpi_variance
    );
    assert!(r.report.re_min > 0.5, "RE_min {}", r.report.re_min);
    assert_eq!(r.quadrant, Quadrant::III);
}

/// §5 / Figure 3: the code-footprint contrast — mcf's unique-EIP count is
/// orders of magnitude below the server workloads'.
#[test]
fn eip_footprint_contrast() {
    let c = cfg(60);
    let mcf = c.run(&BenchmarkSpec::spec("mcf"));
    let oltp = c.run(&BenchmarkSpec::odb_c());
    assert!(
        mcf.profile.unique_eips() < 700,
        "mcf {}",
        mcf.profile.unique_eips()
    );
    assert!(
        oltp.profile.unique_eips() > 8 * mcf.profile.unique_eips(),
        "oltp {} vs mcf {}",
        oltp.profile.unique_eips(),
        mcf.profile.unique_eips()
    );
}

/// Table 2 anchors: one representative per quadrant classifies correctly.
/// (Q-II needs enough phase laps for cross-validation, hence the longer
/// run.)
#[test]
fn quadrant_representatives() {
    let c = cfg(120);
    for (spec, want) in [
        (BenchmarkSpec::spec("gzip"), Quadrant::I),
        (BenchmarkSpec::spec("wupwise"), Quadrant::II),
        (BenchmarkSpec::spec("gcc"), Quadrant::III),
        (BenchmarkSpec::spec("mcf"), Quadrant::IV),
    ] {
        let r = c.run(&spec);
        assert_eq!(r.quadrant, want, "{}", r.name);
    }
}

/// §5.2: context-switch and OS-time ordering — servers switch orders of
/// magnitude more than SPEC, and ODB-C spends far more time in the OS.
#[test]
fn threading_statistics_ordering() {
    let c = cfg(40);
    let oltp = c.run(&BenchmarkSpec::odb_c());
    let spec = c.run(&BenchmarkSpec::spec("gzip"));
    assert!(
        oltp.profile.context_switches_per_second()
            > 20.0 * spec.profile.context_switches_per_second(),
        "oltp {}/s vs spec {}/s",
        oltp.profile.context_switches_per_second(),
        spec.profile.context_switches_per_second()
    );
    assert!(
        oltp.profile.os_fraction() > 0.10,
        "oltp OS {}",
        oltp.profile.os_fraction()
    );
    assert!(
        spec.profile.os_fraction() < 0.01,
        "spec OS {}",
        spec.profile.os_fraction()
    );
}

/// §3.1: the overhead model hits the paper's anchors.
#[test]
fn sampling_overhead_anchors() {
    use fuzzyphase::profiler::overhead_fraction;
    assert!((overhead_fraction(1_000_000) - 0.02).abs() < 0.002);
    assert!((overhead_fraction(100_000) - 0.05).abs() < 0.002);
}
