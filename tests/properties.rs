//! Property-based tests (proptest) on the core invariants of the
//! analysis stack.

use fuzzyphase::arch::{Cache, CacheConfig};
use fuzzyphase::regtree::{Dataset, TreeBuilder};
use fuzzyphase::stats::{variance, KFold, SparseVec, Welford};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e6f64..1e6).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    /// Welford matches the naive two-pass variance.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(finite_f64(), 1..200)) {
        let w: Welford = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        let scale = naive.abs().max(1.0);
        prop_assert!((w.variance_population() - naive).abs() / scale < 1e-6);
    }

    /// unpush is the exact inverse of push.
    #[test]
    fn welford_unpush_inverts(
        xs in prop::collection::vec(-1e3f64..1e3, 1..50),
        extra in -1e3f64..1e3,
    ) {
        let mut w: Welford = xs.iter().copied().collect();
        let before = (w.count(), w.mean(), w.sum_sq_dev());
        w.push(extra);
        w.unpush(extra);
        prop_assert_eq!(w.count(), before.0);
        prop_assert!((w.mean() - before.1).abs() < 1e-6);
        prop_assert!((w.sum_sq_dev() - before.2).abs() < 1e-3);
    }

    /// K-fold is a partition: every index exactly once, sizes balanced.
    #[test]
    fn kfold_partitions(n in 10usize..200, k in 2usize..10, seed in any::<u64>()) {
        prop_assume!(k <= n);
        let kf = KFold::new(n, k, seed);
        let mut seen = vec![false; n];
        for fold in kf.folds() {
            for &i in fold {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let sizes: Vec<usize> = kf.folds().iter().map(|f| f.len()).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);
    }

    /// Sparse dot/distance agree with dense arithmetic.
    #[test]
    fn sparse_matches_dense(
        a in prop::collection::vec((0u32..64, -100f64..100.0), 0..20),
        b in prop::collection::vec((0u32..64, -100f64..100.0), 0..20),
    ) {
        let sa = SparseVec::from_pairs(a.iter().copied());
        let sb = SparseVec::from_pairs(b.iter().copied());
        let mut da = [0.0f64; 64];
        let mut db = [0.0f64; 64];
        sa.add_into_dense(&mut da);
        sb.add_into_dense(&mut db);
        let dot: f64 = da.iter().zip(&db).map(|(x, y)| x * y).sum();
        let dist2: f64 = da.iter().zip(&db).map(|(x, y)| (x - y) * (x - y)).sum();
        prop_assert!((sa.dot(&sb) - dot).abs() < 1e-6);
        prop_assert!((sa.dist2(&sb) - dist2).abs() < 1e-6);
    }

    /// Tree invariants: leaves partition the training set, predictions are
    /// chamber means, and training SSE is non-increasing in k.
    #[test]
    fn tree_invariants(
        rows in prop::collection::vec(
            prop::collection::vec((0u32..16, 0f64..100.0), 1..6),
            10..60,
        ),
        ys in prop::collection::vec(0f64..10.0, 60),
    ) {
        let n = rows.len();
        let vectors: Vec<SparseVec> = rows
            .into_iter()
            .map(SparseVec::from_pairs)
            .collect();
        let ds = Dataset::new(vectors, ys[..n].to_vec());
        let tree = TreeBuilder::new().max_leaves(8).fit(&ds);

        // Leaf counts partition the dataset.
        let leaf_total: u32 = tree
            .nodes()
            .iter()
            .filter(|nd| nd.is_leaf())
            .map(|nd| nd.count)
            .sum();
        prop_assert_eq!(leaf_total as usize, n);

        // Training SSE non-increasing in k.
        let mut prev = f64::INFINITY;
        for k in 1..=tree.num_splits() + 1 {
            let sse = tree.training_sse_k(k);
            prop_assert!(sse <= prev + 1e-9);
            prev = sse;
        }

        // Every row's full-tree prediction is the mean of its chamber:
        // rows landing in the same leaf share a prediction.
        let mut chamber_sum: std::collections::HashMap<u64, (f64, u32)> = Default::default();
        for i in 0..n {
            let pred = tree.predict(ds.row(i));
            let key = pred.to_bits();
            let e = chamber_sum.entry(key).or_insert((0.0, 0));
            e.0 += ds.target(i);
            e.1 += 1;
        }
        for (key, (sum, count)) in chamber_sum {
            let pred = f64::from_bits(key);
            prop_assert!((pred - sum / count as f64).abs() < 1e-6);
        }
    }

    /// Caches never return a hit for a line that was never accessed, and
    /// always hit an immediate re-access.
    #[test]
    fn cache_hit_correctness(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(4096, 64, 2, 1));
        let mut touched = std::collections::HashSet::new();
        for &a in &addrs {
            let line = a >> 6;
            let hit = c.access(a);
            if hit {
                prop_assert!(touched.contains(&line), "hit on untouched line");
            }
            touched.insert(line);
            prop_assert!(c.access(a), "immediate re-access must hit");
        }
        prop_assert_eq!(c.hits() + c.misses(), 2 * addrs.len() as u64);
    }

    /// Population variance is translation-invariant and scales
    /// quadratically.
    #[test]
    fn variance_axioms(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        shift in -1e3f64..1e3,
        scale in 0.1f64..10.0,
    ) {
        let v = variance(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        prop_assert!((variance(&shifted) - v).abs() < 1e-6 * v.max(1.0));
        prop_assert!((variance(&scaled) - v * scale * scale).abs() < 1e-6 * (v * scale * scale).max(1.0));
    }
}
